"""Concurrent fuzzing (§5): a fault-tolerant parallel fuzzing service.

The original PMRace runs 13 worker processes for hours, each fuzzing with
its own seeds, and merges their findings.  This module is the scaling
surface of the reproduction: one engine session per seed, run by a
persistent worker pool, with the guarantees a long campaign needs:

* **Streaming merge** — per-worker :class:`~repro.core.engine.RunResult`s
  are folded into a *fresh* merged result as they complete (workers'
  own result objects are never mutated), so partial findings are visible
  to the ``progress`` callback long before the slowest worker finishes.
* **Fault tolerance** — a worker that raises, exceeds ``worker_timeout``
  (measured from the worker's own execution start so queueing behind a
  busy pool never counts against the budget), or *dies outright*
  (SIGKILLed, OOM-killed — detected by supervising the pid it reported
  at pickup, since ``multiprocessing.Pool`` never completes the result
  handle of a killed worker) does not abort the run: the failure is
  recorded and the session is retried up to ``max_retries`` times under
  a fresh seed derived with the stable mixer
  (:func:`repro.core.seeding.retry_seed`).
* **Retry backoff** — failed attempts are redispatched after capped
  exponential backoff with seeded jitter, not immediately; a
  deterministically-crashing seed no longer burns its whole retry
  budget in milliseconds.  The clock and sleep are injectable so tests
  assert the schedule without real waiting.
* **Supervision** — workers piggyback periodic heartbeats on the
  start-report queue; the parent stamps the last-seen beat per job and
  uses the reported pid for liveness checks and targeted kills.
* **Corpus sharing** — each worker's retained seed corpus
  (``RunResult.corpus_seeds``) is folded into the merged result by
  content digest, and retried sessions start from the merged shared
  corpus (``PMRaceConfig.initial_corpus``) instead of from scratch.
* **Durability** — pass a :class:`~repro.core.session.Session` and every
  completed work unit is checkpointed (checkpoint first, journal line
  second), SIGINT/SIGTERM stop dispatch and write a final checkpoint,
  and a resumed session skips finished workers and *continues* attempt
  counts from the journal's retry ledger instead of resetting them.
* **Isolation** — each worker fuzzes a deep copy of the base config, so a
  caller-supplied mutable member (the :class:`~repro.detect.whitelist.
  Whitelist` in particular) is never shared between sessions, even on the
  ``processes=1`` in-process path.
* **Accounting** — every attempt (successful, failed, retried, died)
  leaves a :class:`WorkerStats` entry on ``merged.worker_stats``.

Targets are passed by registry name (or any picklable zero-argument
factory) so workers can reconstruct them.
"""

import copy
import multiprocessing
import os
import random
import signal
import threading
import time
import traceback
from queue import Empty

from ..obs.tracer import NULL_TRACER
from ..targets.registry import make_target
from .engine import PMRace, PMRaceConfig, RunResult
from .seeding import mix_seeds, retry_seed
from .session import SessionInterrupted, SignalGuard

#: Seconds between completion polls of in-flight pool jobs.
_POLL_INTERVAL = 0.02

#: Default seconds between worker heartbeats on the report queue.
_HEARTBEAT_INTERVAL = 2.0

#: Salt for the retry-backoff jitter stream (distinct from RETRY_SALT so
#: backoff draws never correlate with retry seed derivation).
_BACKOFF_SALT = 0xB0FF

#: Worker-side report queue, installed by the pool initializer.  Workers
#: send tagged tuples ``(tag, worker_id, attempt, pid, monotonic_stamp)``:
#: a ``"start"`` report the moment they pick a job up — so the parent can
#: (a) start the timeout clock at *execution* start rather than
#: submission and (b) SIGKILL the exact process running a hung job — and
#: ``"beat"`` heartbeats every few seconds while the job runs, so the
#: parent knows a silent worker is alive (slow) rather than dead.
_start_queue = None


def _pool_worker_init(queue):
    global _start_queue
    _start_queue = queue


def _heartbeat_loop(worker_id, attempt, interval, done):
    """Worker-side daemon: periodic beats until ``done`` is set."""
    while not done.wait(interval):
        queue = _start_queue
        if queue is None:
            return
        try:
            queue.put(("beat", worker_id, attempt, os.getpid(),
                       time.monotonic()))
        except Exception:
            return


class WorkerStats:
    """Statistics for one worker attempt (one engine session).

    Attributes:
        worker_id: Stable index of the logical worker (one per seed).
        seed: The base seed this attempt fuzzed with (retries get a
            fresh seed, so it can differ from the original).
        attempt: 0 for the first try, 1.. for retries.
        status: ``"ok"``, ``"failed"``, ``"timeout"`` or ``"died"``
            (the worker process vanished without delivering a result).
        campaigns / duration / execs_per_sec: Session statistics
            (zero when the attempt did not produce a result).
        corpus_seeded: Shared-corpus entries this attempt started from
            (non-zero only for retries re-seeded from the merged run).
        error: Formatted traceback (or timeout/death note) for failures.
    """

    def __init__(self, worker_id, seed, attempt=0):
        self.worker_id = worker_id
        self.seed = seed
        self.attempt = attempt
        self.status = "ok"
        self.campaigns = 0
        self.duration = 0.0
        self.execs_per_sec = 0.0
        self.corpus_seeded = 0
        self.error = None

    @property
    def retries(self):
        return self.attempt

    def record(self, result):
        self.status = "ok"
        self.campaigns = result.campaigns
        self.duration = result.duration
        self.execs_per_sec = result.executions_per_second
        return self

    def fail(self, error, status="failed"):
        self.status = status
        self.error = error
        return self

    def to_dict(self):
        return {
            "worker_id": self.worker_id,
            "seed": self.seed,
            "attempt": self.attempt,
            "status": self.status,
            "campaigns": self.campaigns,
            "duration_s": round(self.duration, 3),
            "execs_per_sec": round(self.execs_per_sec, 2),
            "corpus_seeded": self.corpus_seeded,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, doc):
        """Rebuild from :meth:`to_dict` output (session checkpoints)."""
        stats = cls(doc["worker_id"], doc["seed"], doc.get("attempt", 0))
        stats.status = doc.get("status", "ok")
        stats.campaigns = doc.get("campaigns", 0)
        stats.duration = doc.get("duration_s", 0.0)
        stats.execs_per_sec = doc.get("execs_per_sec", 0.0)
        stats.corpus_seeded = doc.get("corpus_seeded", 0)
        stats.error = doc.get("error")
        return stats

    def __repr__(self):
        return "<WorkerStats #%d seed=%d attempt=%d %s>" % (
            self.worker_id, self.seed, self.attempt, self.status)


class _Job:
    """One scheduled attempt: which worker, which seed, which try.

    ``started``/``pid`` arrive from the worker's start report; a job
    that never reported is still queued behind busy pool slots and must
    not be timed out.  ``last_beat`` tracks the newest heartbeat.
    ``not_before`` is the earliest dispatch time (retry backoff);
    ``shared_corpus`` carries exported corpus entries
    (``RunResult.corpus_seeds``) a retry starts from.
    """

    def __init__(self, worker_id, seed, attempt=0, shared_corpus=None):
        self.worker_id = worker_id
        self.seed = seed
        self.attempt = attempt
        self.shared_corpus = shared_corpus
        self.started = None
        self.pid = None
        self.last_beat = None
        self.not_before = 0.0

    @property
    def key(self):
        return (self.worker_id, self.attempt)

    def retry(self, shared_corpus=None):
        next_attempt = self.attempt + 1
        return _Job(self.worker_id, retry_seed(self.seed, next_attempt),
                    next_attempt, shared_corpus=shared_corpus)


def _session_config(config, seed, shared_corpus=None):
    """A per-worker deep copy of ``config`` with its own base seed.

    Deep copy (not ``copy.copy``) so mutable members — the whitelist's
    entry list above all — cannot cross-contaminate sessions on the
    in-process path; subprocess workers get isolation from pickling
    anyway, but both paths behave identically this way.
    """
    cfg = copy.deepcopy(config) if config is not None else PMRaceConfig()
    cfg.base_seed = seed
    if shared_corpus:
        cfg.initial_corpus = list(shared_corpus)
    return cfg


def _run_worker(payload):
    """Pool entry point: run one engine session, never raise.

    Exceptions are captured and shipped back as a tagged tuple so one
    crashing worker cannot tear down the whole ``map``/pool iteration.

    When the config has ``capture_repro`` on, the records inside the
    returned RunResult carry their repro bundles (plain-data JSON
    documents) across the pickle boundary; the merge in ``_absorb``
    adopts a duplicate's bundle for any bundle-less kept record, same
    as crash images.
    """
    (worker_id, attempt, factory, config, seed, shared_corpus,
     heartbeat_interval) = payload
    beat_done = None
    if _start_queue is not None:
        # CLOCK_MONOTONIC is system-wide on Linux, so the parent can
        # compare this stamp against its own clock directly.
        _start_queue.put(("start", worker_id, attempt, os.getpid(),
                          time.monotonic()))
        if heartbeat_interval:
            beat_done = threading.Event()
            threading.Thread(
                target=_heartbeat_loop,
                args=(worker_id, attempt, heartbeat_interval, beat_done),
                daemon=True).start()
    try:
        if isinstance(factory, str):
            # A dynamically registered target only exists by name after
            # its plugin module is imported in THIS interpreter.
            if config is not None and \
                    getattr(config, "target_modules", ()):
                from ..targets.registry import load_target_modules
                load_target_modules(config.target_modules)
            target = make_target(factory)
        else:
            target = factory()
        cfg = _session_config(config, seed, shared_corpus)
        result = PMRace(target, cfg).run()
        return (worker_id, attempt, seed, "ok", result)
    except (SessionInterrupted, KeyboardInterrupt):
        # On the in-process path the SignalGuard handler raises inside
        # the engine session; it must reach the service's interrupt
        # handling, not be recorded as a worker failure and retried.
        raise
    except Exception:
        return (worker_id, attempt, seed, "error",
                traceback.format_exc())
    finally:
        if beat_done is not None:
            # Pool workers persist across tasks: stop this job's beats
            # so a later job on the same process isn't double-reported.
            beat_done.set()


def _target_name(target):
    """Best-effort merged-result name before any worker has reported."""
    if isinstance(target, str):
        return target
    return getattr(target, "NAME", None) or getattr(
        target, "__name__", None) or repr(target)


def _pid_alive(pid):
    """Is ``pid`` still running (or a not-yet-reaped zombie)?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass
    return True


class ParallelFuzzService:
    """Drives N worker sessions and streams their results into one merge.

    Normally used through :func:`fuzz_parallel`; instantiating the
    service directly gives access to the merged-so-far result while the
    run is still in flight (via the ``progress`` callback arguments).

    With a ``session`` (:class:`~repro.core.session.Session`), every
    completed worker is durably checkpointed and journaled, signals
    produce a final checkpoint instead of lost work, and a resumed
    session restores the merged result, skips finished workers, and
    continues each unfinished worker at the attempt the retry ledger
    recorded.
    """

    def __init__(self, target, config=None, seeds=(7, 13, 42, 99),
                 processes=None, worker_timeout=None, max_retries=1,
                 progress=None, tracer=None, metrics=None, session=None,
                 retry_backoff=0.5, retry_backoff_cap=30.0,
                 backoff_rng=None, clock=time.monotonic, sleep=time.sleep,
                 heartbeat_interval=_HEARTBEAT_INTERVAL):
        if not seeds:
            raise ValueError("fuzz_parallel needs at least one seed")
        self.target = target
        self.config = config
        self.seeds = tuple(seeds)
        self.processes = processes
        self.worker_timeout = worker_timeout
        self.max_retries = max_retries
        self.progress = progress
        self.session = session
        self.retry_backoff = retry_backoff
        self.retry_backoff_cap = retry_backoff_cap
        # Seeded from the run's seeds, so the backoff schedule is
        # deterministic for a given invocation; tests may inject both
        # the rng and a fake clock/sleep to pin the exact delays.
        self.backoff_rng = backoff_rng if backoff_rng is not None else \
            random.Random(mix_seeds(_BACKOFF_SALT, *self.seeds))
        self.clock = clock
        self.sleep = sleep
        self.heartbeat_interval = heartbeat_interval
        # Observability sinks live in the parent only: workers run in
        # subprocesses, so worker-side events surface here as typed
        # "worker" records and merged profile/metric aggregates.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        # The merged result is a *fresh* RunResult: worker results are
        # folded in and never mutated, and no worker's base_seed leaks
        # into the merged config (all seeds live in worker_stats).
        self.merged = RunResult(_target_name(target),
                                copy.deepcopy(config)
                                if config is not None else PMRaceConfig())
        self._units = set()

    # ------------------------------------------------------------------

    def _initial_jobs(self):
        """The dispatch list: all workers on a fresh run; on resume,
        only unfinished workers, each continuing at the journal ledger's
        next attempt (so retry budgets survive the crash)."""
        done, ledger = set(), {}
        if self.session is not None and self.session.resumed:
            restored = self.session.load_checkpoint(
                copy.deepcopy(self.config)
                if self.config is not None else PMRaceConfig())
            if restored is not None:
                self.merged = restored
            done = self.session.done_units()
            ledger = self.session.retry_ledger()
            if self.tracer.enabled:
                self.tracer.emit(
                    "session_resume", dir=self.session.directory,
                    skipped_units=len(done & set(
                        range(len(self.seeds)))),
                    torn_lines=self.session.journal_torn_lines)
            if self.metrics is not None:
                self.metrics.counter("session.resume.skipped").inc(
                    len(done))
        self._units = set(done)
        jobs = []
        for index, seed in enumerate(self.seeds):
            if index in done:
                continue
            next_attempt, last_seed = ledger.get(index, (0, seed))
            if next_attempt == 0:
                jobs.append(_Job(index, seed))
            elif next_attempt <= self.max_retries:
                jobs.append(_Job(index,
                                 retry_seed(last_seed, next_attempt),
                                 next_attempt))
            # else: the previous run already exhausted this worker's
            # retry budget — resuming does not grant a fresh one.
        return jobs

    def run(self):
        jobs = self._initial_jobs()
        self.tracer.emit("run_start",
                         target=_target_name(self.target), parallel=True,
                         seeds=list(self.seeds), processes=self.processes,
                         max_retries=self.max_retries,
                         resumed=bool(self.session is not None
                                      and self.session.resumed))
        start = time.monotonic()
        interrupted = None
        try:
            if self.session is not None:
                with SignalGuard():
                    self._dispatch(jobs)
            else:
                self._dispatch(jobs)
        except SessionInterrupted as exc:
            interrupted = exc.signum
        except KeyboardInterrupt:
            if self.session is None:
                raise
            interrupted = signal.SIGINT
        self.merged._regroup()
        if self.session is not None:
            if interrupted is None:
                whitelist = getattr(self.config, "whitelist", None)
                self.session.revalidate_pending(self.merged,
                                                whitelist=whitelist)
                self.merged._regroup()
            self.session.write_checkpoint(
                self.merged, self._units, final=interrupted is None,
                interrupted=interrupted)
        self.merged.interrupted = interrupted
        self.tracer.emit("run_end", target=self.merged.target_name,
                         duration_s=round(time.monotonic() - start, 6),
                         interrupted=interrupted,
                         summary=self.merged.summary())
        return self.merged

    def _dispatch(self, jobs):
        if self.processes == 1:
            self._run_inprocess(jobs)
        else:
            self._run_pool(jobs)

    # ------------------------------------------------------------------

    def _payload(self, job):
        return (job.worker_id, job.attempt, self.target, self.config,
                job.seed, job.shared_corpus, self.heartbeat_interval)

    def _reseed(self, job):
        """Stamp a retry with the merged shared corpus as it stands at
        *dispatch* time (not when the retry was scheduled), so it picks
        up everything other workers merged while it waited for a slot."""
        if job.attempt == 0:
            return job
        job.shared_corpus = [dict(entry, stats=dict(entry["stats"]))
                             for entry in self.merged.corpus_seeds] or None
        if job.shared_corpus and self.metrics is not None:
            self.metrics.counter("parallel.corpus_reseeded").inc(
                len(job.shared_corpus))
        return job

    def _backoff_delay(self, attempt):
        """Capped exponential backoff with jitter for retry ``attempt``
        (1-based): ``base * 2**(attempt-1)`` capped, scaled into
        ``[0.5, 1.0)`` of itself by the seeded jitter stream."""
        if self.retry_backoff <= 0:
            return 0.0
        delay = min(self.retry_backoff_cap,
                    self.retry_backoff * (2 ** (attempt - 1)))
        return delay * (0.5 + 0.5 * self.backoff_rng.random())

    def _checkpoint_unit(self, stats):
        """Durably commit one finished attempt: checkpoint first (it
        embeds the unit list), journal line second — a crash between the
        two double-records nothing, since resume takes the union."""
        if self.session is None:
            return
        if stats.status == "ok":
            self._units.add(stats.worker_id)
            self.session.write_checkpoint(self.merged, self._units)
        self.session.record_unit(stats.worker_id, stats.seed,
                                 stats.attempt, stats.status,
                                 stats.campaigns)

    def _absorb(self, job, outcome):
        """Fold one worker attempt into the merged result; returns the
        retry job (backoff already stamped) if the attempt failed and
        has retry budget left."""
        worker_id, attempt, seed, status, value = outcome
        stats = WorkerStats(worker_id, seed, attempt)
        stats.corpus_seeded = len(job.shared_corpus or ())
        merge_seconds = 0.0
        if status == "ok":
            stats.record(value)
            merge_start = time.monotonic()
            upgrades_before = self.merged.verdict_upgrades
            self.merged.merge(value)
            merge_seconds = time.monotonic() - merge_start
            upgraded = self.merged.verdict_upgrades - upgrades_before
            if upgraded and self.metrics is not None:
                self.metrics.counter("parallel.verdict_upgrades").inc(
                    upgraded)
        else:
            stats.fail(value, status if status in ("timeout", "died")
                       else "failed")
        self.merged.worker_stats.append(stats)
        self._checkpoint_unit(stats)
        if self.metrics is not None:
            self.metrics.counter("parallel.attempts").inc()
            self.metrics.counter("parallel.attempts.%s" % stats.status).inc()
            self.metrics.counter("parallel.merged_campaigns").inc(
                stats.campaigns)
            self.metrics.histogram("parallel.merge_seconds").observe(
                merge_seconds)
            self.metrics.histogram("parallel.worker_seconds").observe(
                stats.duration)
        if self.tracer.enabled:
            self.tracer.emit("worker", worker_id=worker_id, seed=seed,
                             attempt=attempt, status=stats.status,
                             campaigns=stats.campaigns,
                             duration_s=round(stats.duration, 6),
                             merge_s=round(merge_seconds, 6),
                             merged_campaigns=self.merged.campaigns)
        if self.progress is not None:
            self.progress(stats, self.merged)
        if stats.status != "ok" and attempt < self.max_retries:
            retry = job.retry()
            delay = self._backoff_delay(retry.attempt)
            retry.not_before = self.clock() + delay
            if self.metrics is not None:
                self.metrics.histogram("parallel.retry_backoff_s").observe(
                    delay)
            return retry
        return None

    def _run_inprocess(self, jobs):
        """Sequential fallback (``processes=1``) — debugger friendly.

        ``worker_timeout`` is not enforced here: there is no second
        process to observe a hang from.  Retry backoff is honored by
        sleeping out the remaining delay before dispatch.
        """
        queue = list(jobs)
        while queue:
            job = queue.pop(0)
            remaining = job.not_before - self.clock()
            if remaining > 0:
                self.sleep(remaining)
            job = self._reseed(job)
            retry = self._absorb(job, _run_worker(self._payload(job)))
            if retry is not None:
                queue.append(retry)

    def _drain_start_reports(self, start_queue, waiting):
        """Stamp start/pid and heartbeat times onto in-flight jobs."""
        while True:
            try:
                tag, worker_id, attempt, pid, stamp = \
                    start_queue.get_nowait()
            except Empty:
                return
            job = waiting.get((worker_id, attempt))
            if job is None:
                continue
            if tag == "start":
                job.started = stamp
                job.pid = pid
            job.last_beat = stamp
            if tag == "beat" and self.metrics is not None:
                self.metrics.counter("parallel.heartbeats").inc()

    def _kill_job(self, job):
        if job.pid is not None:
            try:
                os.kill(job.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass

    def _run_pool(self, jobs):
        processes = self.processes or min(len(jobs),
                                          multiprocessing.cpu_count())
        start_queue = multiprocessing.Queue()
        pool = multiprocessing.Pool(processes,
                                    initializer=_pool_worker_init,
                                    initargs=(start_queue,))
        abort = False
        try:
            inflight = {}
            waiting = {}
            queue = list(jobs)
            while queue or inflight:
                now = self.clock()
                for job in [j for j in queue if j.not_before <= now]:
                    queue.remove(job)
                    job = self._reseed(job)
                    waiting[job.key] = job
                    inflight[pool.apply_async(_run_worker,
                                              (self._payload(job),))] = job
                self.sleep(_POLL_INTERVAL)
                self._drain_start_reports(start_queue, waiting)
                for handle in list(inflight):
                    job = inflight[handle]
                    if handle.ready():
                        del inflight[handle]
                        waiting.pop(job.key, None)
                        retry = self._absorb(job, handle.get())
                    elif self.worker_timeout is not None and \
                            job.started is not None and \
                            time.monotonic() - job.started > \
                            self.worker_timeout:
                        # The clock starts at the worker's own start
                        # report, so a job queued behind a busy slot is
                        # never charged for its waiting time.  The stuck
                        # process is killed outright: the pool reaps it
                        # and respawns a fresh worker, so the slot is
                        # available to queued retries instead of being
                        # held hostage until the final terminate().
                        del inflight[handle]
                        waiting.pop(job.key, None)
                        abort = True
                        self._kill_job(job)
                        retry = self._absorb(
                            job, (job.worker_id, job.attempt, job.seed,
                                  "timeout", "worker exceeded %.1fs"
                                  % self.worker_timeout))
                    elif job.pid is not None and not _pid_alive(job.pid):
                        # The worker vanished (SIGKILL, OOM): its result
                        # handle will never become ready, so without this
                        # check the run would hang forever.  Re-check
                        # ready() once — the result may have been
                        # delivered in the instant before death.
                        if handle.ready():
                            continue
                        del inflight[handle]
                        waiting.pop(job.key, None)
                        # The lost task's result handle stays incomplete
                        # in the pool's cache forever, so a graceful
                        # close()+join() would hang waiting on it: this
                        # pool can only be terminate()d at the end.
                        abort = True
                        if self.metrics is not None:
                            self.metrics.counter(
                                "parallel.workers_died").inc()
                        retry = self._absorb(
                            job, (job.worker_id, job.attempt, job.seed,
                                  "died", "worker process %d died "
                                  "without reporting a result" % job.pid))
                    else:
                        continue
                    if retry is not None:
                        queue.append(retry)
        except BaseException:
            # Interrupt or internal error: take the in-flight workers
            # down with us so terminate() isn't blocked by busy children.
            abort = True
            for job in list(inflight.values()):
                self._kill_job(job)
            raise
        finally:
            if abort:
                pool.terminate()
            else:
                pool.close()
            pool.join()
            start_queue.close()


def fuzz_parallel(target, config=None, seeds=(7, 13, 42, 99),
                  processes=None, worker_timeout=None, max_retries=1,
                  progress=None, tracer=None, metrics=None, session=None,
                  **supervision):
    """Fuzz ``target`` with one worker session per seed; merged result.

    Args:
        target: A Table 1 target name (str) or a picklable zero-argument
            factory returning a Target.
        config: Base :class:`PMRaceConfig`; each worker fuzzes a deep
            copy with ``base_seed`` set to its assigned seed.  The
            caller's object is never mutated.
        seeds: One engine session per seed.
        processes: Worker pool size (default: ``min(len(seeds), cpus)``).
            ``1`` runs everything in-process (useful under debuggers).
        worker_timeout: Seconds a worker may *execute* before it is
            killed and written off as hung (pool path only; the clock
            starts at the worker's start report, not at submission, so
            retries queued behind a stuck process are not falsely timed
            out while they wait for a slot).
        max_retries: How many times a failed/timed-out/died session is
            retried under a fresh seed (default 1), after capped
            exponential backoff with seeded jitter.
        progress: Optional callable ``progress(stats, merged)`` invoked
            after every worker attempt with that attempt's
            :class:`WorkerStats` and the merged-so-far result.
        tracer: Optional :class:`~repro.obs.tracer.Tracer` (parent-side:
            worker lifecycle becomes typed ``worker`` events).
        metrics: Optional :class:`~repro.obs.metrics.Metrics` counting
            attempts, merged campaigns, heartbeats, deaths, backoff
            delays, and merge/worker durations.
        session: Optional :class:`~repro.core.session.Session` making the
            run durable (per-unit checkpoints, graceful signals,
            ``--resume`` support).
        **supervision: Passed to :class:`ParallelFuzzService` —
            ``retry_backoff``, ``retry_backoff_cap``, ``backoff_rng``,
            ``clock``, ``sleep``, ``heartbeat_interval``.

    Returns:
        A fresh merged :class:`~repro.core.engine.RunResult` whose
        ``worker_stats`` lists every attempt and whose ``interrupted``
        attribute carries the signal number when a session run was
        stopped by SIGINT/SIGTERM (None otherwise); the per-worker
        results the workers produced are left unmodified.
    """
    return ParallelFuzzService(target, config, seeds=seeds,
                               processes=processes,
                               worker_timeout=worker_timeout,
                               max_retries=max_retries,
                               progress=progress, tracer=tracer,
                               metrics=metrics, session=session,
                               **supervision).run()

"""Concurrent fuzzing (§5): worker processes with low contention.

The original PMRace runs 13 worker processes, each fuzzing with its own
seeds, and merges their findings. Here each worker is a subprocess running
one full seeded engine session; results are merged with the same
deduplication used within a session, so the parallel run reports exactly
what a longer serial run would.

Targets are passed by registry name (or any picklable zero-argument
factory) so workers can reconstruct them.
"""

import multiprocessing

from ..targets.registry import make_target
from .engine import PMRace, PMRaceConfig


def _run_worker(job):
    factory, config, seed = job
    if isinstance(factory, str):
        target = make_target(factory)
    else:
        target = factory()
    import copy
    cfg = copy.copy(config) if config is not None else PMRaceConfig()
    cfg.base_seed = seed
    return PMRace(target, cfg).run()


def fuzz_parallel(target, config=None, seeds=(7, 13, 42, 99),
                  processes=None):
    """Fuzz ``target`` with one worker process per seed; merged result.

    Args:
        target: A Table 1 target name (str) or a picklable zero-argument
            factory returning a Target.
        config: Base :class:`PMRaceConfig`; each worker overrides
            ``base_seed`` with its assigned seed.
        seeds: One engine session per seed.
        processes: Worker pool size (default: ``min(len(seeds), cpus)``).
            ``1`` runs everything in-process (useful under debuggers).

    Returns:
        The merged :class:`~repro.core.engine.RunResult`.
    """
    jobs = [(target, config, seed) for seed in seeds]
    if processes == 1:
        results = [_run_worker(job) for job in jobs]
    else:
        processes = processes or min(len(seeds),
                                     multiprocessing.cpu_count())
        with multiprocessing.Pool(processes) as pool:
            results = pool.map(_run_worker, jobs)
    merged = results[0]
    for result in results[1:]:
        merged.merge(result)
    return merged

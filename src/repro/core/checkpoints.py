"""In-memory checkpoints for PM pools (§5's fork-server analog).

``libpmemobj`` pool creation walks registry slots and lanes with
individually persisted stores — expensive to repeat for every campaign.
The checkpoint manager performs the target's ``setup()`` once, snapshots
the resulting :class:`~repro.targets.base.TargetState`, and restores the
snapshot before each campaign.

For ``libpmem``-based targets (memcached-pmem uses ``pmem_map_file``, a
thin mmap wrapper) setup is already cheap and the paper recommends
disabling checkpoints (§6.5); :func:`make_state_provider` honours that
automatically unless forced.

Restores are incremental: :class:`~repro.pmem.memory.PersistentMemory`
journals which cache lines each campaign touched, so restoring the same
snapshot again copies only those lines back instead of both full pools —
the provide() cost scales with campaign activity, not pool size.
"""


class StateProvider:
    """Produces an initialized TargetState before each campaign.

    Args:
        eadr: Run the target on a simulated eADR platform (§6.6): CPU
            caches join the persistence domain after setup, so every
            store is immediately durable.
    """

    def __init__(self, target, use_checkpoints, eadr=False):
        self.target = target
        self.use_checkpoints = use_checkpoints
        self.eadr = eadr
        self._state = None
        self._snapshot = None
        self.setup_count = 0
        self.restore_count = 0

    def _platform(self, state):
        if self.eadr:
            state.pool.memory.eadr = True
        return state

    def provide(self):
        """An initialized state: checkpoint-restored or freshly set up."""
        if not self.use_checkpoints:
            self.setup_count += 1
            self._state = self.target.setup()
            return self._platform(self._state)
        if self._snapshot is None:
            self._state = self.target.setup()
            self.setup_count += 1
            self._snapshot = self._state.snapshot()
            return self._platform(self._state)
        self._state.restore(self._snapshot)
        self.restore_count += 1
        return self._platform(self._state)


def make_state_provider(target, use_checkpoints=None, eadr=False):
    """Provider with the paper's recommended default per pool type.

    Args:
        use_checkpoints: True/False to force; None selects automatically
            (checkpoints on, except for libpmem-based targets).
        eadr: Simulate an eADR platform (persistent CPU caches).
    """
    if use_checkpoints is None:
        use_checkpoints = not target.USES_LIBPMEM
    return StateProvider(target, use_checkpoints, eadr=eadr)

"""Typed layout helpers for persistent structures.

Targets describe on-PM structs as ordered ``(name, size)`` fields; a
:class:`StructLayout` turns that into stable offsets so code reads like the
original C (``layout.off(node, "next")`` instead of magic numbers).
"""

from .cacheline import align_up
from .errors import PmemError


class StructLayout:
    """Offsets of the fields of one persistent struct.

    Args:
        name: Struct name (used in error messages).
        fields: Iterable of field names (8 bytes each) or ``(name, size)``
            tuples.
        align: Total-size alignment; cache-line by default so structs
            allocated back to back never share a line.
    """

    def __init__(self, name, fields, align=64):
        self.name = name
        self.offsets = {}
        self.sizes = {}
        cursor = 0
        for field in fields:
            if isinstance(field, str):
                fname, fsize = field, 8
            else:
                fname, fsize = field
            if fname in self.offsets:
                raise PmemError("duplicate field %r in struct %s" % (fname, name))
            # naturally align words
            if fsize in (4, 8):
                cursor = align_up(cursor, fsize)
            self.offsets[fname] = cursor
            self.sizes[fname] = fsize
            cursor += fsize
        self.size = align_up(cursor, align)

    def off(self, base, field):
        """Absolute pool offset of ``field`` in the struct at ``base``."""
        try:
            return base + self.offsets[field]
        except KeyError:
            raise PmemError("struct %s has no field %r" % (self.name, field))

    def field_size(self, field):
        return self.sizes[field]

    def __contains__(self, field):
        return field in self.offsets

    def __repr__(self):
        return "<StructLayout %s size=%d fields=%s>" % (
            self.name, self.size, list(self.offsets))

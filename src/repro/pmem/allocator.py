"""A persistent-heap allocator with leak accounting.

PM leaks matter more than DRAM leaks because rebooting does not reclaim
them (§6.2, bugs 3 and 7). The allocator keeps a first-fit free list in
DRAM and, optionally, a durable allocation registry inside the pool so that
post-crash analysis can enumerate blocks that were allocated before the
crash — the basis of the leak verdicts attached to Intra-thread bugs.

The registry is written with non-temporal stores, mirroring how PMDK's
transactional allocator makes allocation metadata crash-consistent with a
redo log (§4.4); this is why reads of registry data are whitelisted by
default.
"""

import struct

from .cacheline import align_up
from .errors import AllocationError, DoubleFreeError, OutOfBoundsError

_U64 = struct.Struct("<Q")

#: Each durable registry slot: (offset, size); size == 0 means free slot.
_SLOT_BYTES = 16


class PersistentAllocator:
    """First-fit allocator over ``[heap_start, heap_end)`` of a pool.

    Args:
        pool: The :class:`~repro.pmem.pool.PmemPool` to carve from.
        heap_start: First byte of the managed region.
        heap_end: One past the last managed byte.
        registry_start: Offset of the durable allocation registry, or None
            to disable durable accounting.
        registry_slots: Capacity of the registry.
        alignment: Allocation alignment (cache line by default so distinct
            objects never share a line — matches how the targets lay out
            persistent nodes).
    """

    def __init__(self, pool, heap_start, heap_end, registry_start=None,
                 registry_slots=1024, alignment=64):
        if heap_end <= heap_start:
            raise AllocationError("empty heap region")
        if heap_end > pool.size:
            raise OutOfBoundsError(heap_start, heap_end - heap_start, pool.size)
        self.pool = pool
        self.heap_start = heap_start
        self.heap_end = heap_end
        self.alignment = alignment
        self.registry_start = registry_start
        self.registry_slots = registry_slots
        self._free = [(heap_start, heap_end - heap_start)]
        self._allocated = {}
        self._slot_of = {}
        self._used_slots = set()
        self.allocated_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    # ------------------------------------------------------------------

    def alloc(self, size, thread_id=None):
        """Allocate ``size`` bytes; returns the pool offset.

        Raises:
            AllocationError: If no free block is large enough or the durable
                registry is full.
        """
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        need = align_up(size, self.alignment)
        for index, (off, length) in enumerate(self._free):
            if length >= need:
                remaining = length - need
                if remaining:
                    self._free[index] = (off + need, remaining)
                else:
                    del self._free[index]
                self._allocated[off] = need
                self.allocated_bytes += need
                self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
                self.alloc_count += 1
                self._record_alloc(off, need, thread_id)
                return off
        raise AllocationError(
            "out of persistent memory: need %d bytes, %d free"
            % (need, sum(length for _, length in self._free))
        )

    def free(self, off, thread_id=None):
        """Release a block previously returned by :meth:`alloc`."""
        size = self._allocated.pop(off, None)
        if size is None:
            raise DoubleFreeError("free of unallocated offset %#x" % off)
        self.allocated_bytes -= size
        self.free_count += 1
        self._free.append((off, size))
        self._free.sort()
        self._coalesce()
        self._record_free(off, thread_id)

    def _coalesce(self):
        merged = []
        for off, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((off, length))
        self._free = merged

    def is_allocated(self, off):
        return off in self._allocated

    def live_blocks(self):
        """Mapping of offset -> size for currently allocated blocks."""
        return dict(self._allocated)

    # ------------------------------------------------------------------
    # durable registry

    def _slot_addr(self, slot):
        return self.registry_start + slot * _SLOT_BYTES

    def _record_alloc(self, off, size, thread_id):
        if self.registry_start is None:
            return
        for slot in range(self.registry_slots):
            if slot in self._used_slots:
                continue
            addr = self._slot_addr(slot)
            self.pool.memory.store(addr, _U64.pack(off), thread_id,
                                   "allocator.registry", ntstore=True)
            self.pool.memory.store(addr + 8, _U64.pack(size), thread_id,
                                   "allocator.registry", ntstore=True)
            self._slot_of[off] = slot
            self._used_slots.add(slot)
            return
        raise AllocationError("durable allocation registry full")

    def _record_free(self, off, thread_id):
        if self.registry_start is None:
            return
        slot = self._slot_of.pop(off, None)
        if slot is not None:
            self._used_slots.discard(slot)
            addr = self._slot_addr(slot)
            self.pool.memory.store(addr + 8, _U64.pack(0), thread_id,
                                   "allocator.registry", ntstore=True)

    @staticmethod
    def registry_blocks(image, registry_start, registry_slots=1024):
        """Enumerate (offset, size) of blocks live in a crash *image*."""
        blocks = []
        for slot in range(registry_slots):
            base = registry_start + slot * _SLOT_BYTES
            if base + _SLOT_BYTES > len(image):
                break
            off = _U64.unpack_from(image, base)[0]
            size = _U64.unpack_from(image, base + 8)[0]
            if size:
                blocks.append((off, size))
        return blocks

    # ------------------------------------------------------------------
    # snapshots (for in-memory checkpoints)

    def snapshot(self):
        """Capture DRAM-side allocator state (pairs with pool.checkpoint())."""
        return (list(self._free), dict(self._allocated), dict(self._slot_of),
                set(self._used_slots), self.allocated_bytes, self.peak_bytes,
                self.alloc_count, self.free_count)

    def restore(self, snap):
        (free, allocated, slot_of, used_slots, allocated_bytes, peak_bytes,
         alloc_count, free_count) = snap
        self._free = list(free)
        self._allocated = dict(allocated)
        self._slot_of = dict(slot_of)
        self._used_slots = set(used_slots)
        self.allocated_bytes = allocated_bytes
        self.peak_bytes = peak_bytes
        self.alloc_count = alloc_count
        self.free_count = free_count

    def leaked_blocks(self, reachable_offsets):
        """Blocks allocated but not reachable from the given root set."""
        reachable = set(reachable_offsets)
        return {off: size for off, size in self._allocated.items()
                if off not in reachable}

"""Simulated persistent-memory substrate (pools, cache lines, allocator)."""

from .cacheline import CACHE_LINE_SIZE, WORD_SIZE, LineState, line_of
from .errors import (
    AllocationError,
    CrashError,
    DoubleFreeError,
    MisalignedAccessError,
    OutOfBoundsError,
    PmemError,
    PoolError,
)
from .memory import PersistentMemory, StoreRecord
from .pool import NULL_OFF, PmemPool
from .allocator import PersistentAllocator
from .layout import StructLayout

__all__ = [
    "CACHE_LINE_SIZE",
    "WORD_SIZE",
    "LineState",
    "line_of",
    "PmemError",
    "OutOfBoundsError",
    "MisalignedAccessError",
    "AllocationError",
    "DoubleFreeError",
    "PoolError",
    "CrashError",
    "PersistentMemory",
    "StoreRecord",
    "PmemPool",
    "NULL_OFF",
    "PersistentAllocator",
    "StructLayout",
]

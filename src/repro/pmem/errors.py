"""Exception hierarchy for the simulated persistent-memory substrate."""


class PmemError(Exception):
    """Base class for all persistent-memory simulation errors."""


class OutOfBoundsError(PmemError):
    """A PM access fell outside the mapped pool."""

    def __init__(self, addr, size, pool_size):
        super().__init__(
            "PM access at offset %#x (size %d) outside pool of %d bytes"
            % (addr, size, pool_size)
        )
        self.addr = addr
        self.size = size
        self.pool_size = pool_size


class MisalignedAccessError(PmemError):
    """A word access was not naturally aligned."""

    def __init__(self, addr, size):
        super().__init__("misaligned %d-byte PM access at offset %#x" % (size, addr))
        self.addr = addr
        self.size = size


class AllocationError(PmemError):
    """The persistent allocator could not satisfy a request."""


class DoubleFreeError(AllocationError):
    """A persistent block was freed twice."""


class PoolError(PmemError):
    """Pool management failure (unknown pool, reopened pool, bad layout)."""


class CrashError(PmemError):
    """Raised inside simulated threads when a crash point is injected."""

"""Named PM pools: the unit of memory-mapping, crashing, and recovery.

A :class:`PmemPool` wraps a :class:`~repro.pmem.memory.PersistentMemory`
with raw (uninstrumented) word accessors. Instrumented access goes through
:class:`repro.instrument.hooks.PmView`, which targets use; the raw accessors
here exist for recovery code, tests, and the allocator's bookkeeping.
"""

import struct

from .errors import MisalignedAccessError, PoolError
from .memory import PersistentMemory

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

#: Sentinel offset meaning "null pointer" inside a pool.
NULL_OFF = 0


class PmemPool:
    """A named simulated PM pool.

    Args:
        name: Pool file name (purely informational in the simulation).
        size: Pool size in bytes.
        pending_persists_on_crash: Forwarded to :class:`PersistentMemory`.
    """

    def __init__(self, name, size, pending_persists_on_crash=False,
                 eadr=False):
        if size <= 0:
            raise PoolError("pool %r must have positive size" % name)
        self.name = name
        self.memory = PersistentMemory(
            size, pending_persists_on_crash=pending_persists_on_crash,
            eadr=eadr,
        )

    @property
    def size(self):
        return self.memory.size

    @classmethod
    def from_image(cls, name, image):
        """Rebuild a pool from a crash image; everything starts persisted."""
        pool = cls(name, len(image))
        pool.memory._volatile[:] = image
        pool.memory._persisted[:] = image
        return pool

    # ------------------------------------------------------------------
    # raw word accessors (no instrumentation, no persistency effects for
    # reads; writes behave like regular cached stores)

    def _check_align(self, addr, size):
        if addr % size != 0:
            raise MisalignedAccessError(addr, size)

    def read_u64(self, addr):
        self._check_align(addr, 8)
        return _U64.unpack(self.memory.load(addr, 8))[0]

    def write_u64(self, addr, value, thread_id=None, instr_id=None,
                  ntstore=False):
        self._check_align(addr, 8)
        return self.memory.store(addr, _U64.pack(value & (2 ** 64 - 1)),
                                 thread_id, instr_id, ntstore)

    def read_u32(self, addr):
        self._check_align(addr, 4)
        return _U32.unpack(self.memory.load(addr, 4))[0]

    def write_u32(self, addr, value, thread_id=None, instr_id=None,
                  ntstore=False):
        self._check_align(addr, 4)
        return self.memory.store(addr, _U32.pack(value & (2 ** 32 - 1)),
                                 thread_id, instr_id, ntstore)

    def read_bytes(self, addr, size):
        return self.memory.load(addr, size)

    def write_bytes(self, addr, data, thread_id=None, instr_id=None,
                    ntstore=False):
        return self.memory.store(addr, data, thread_id, instr_id, ntstore)

    def read_persisted_u64(self, addr):
        self._check_align(addr, 8)
        return _U64.unpack(self.memory.load_persisted(addr, 8))[0]

    # ------------------------------------------------------------------
    # lifecycle

    def crash_image(self, evict_fraction=0.0, rng=None):
        """Bytes PM would contain after a crash at this instant."""
        return self.memory.crash_image(evict_fraction, rng)

    def checkpoint(self):
        """Deep snapshot for in-memory checkpointing (§5 fork-server analog)."""
        return self.memory.snapshot()

    def restore(self, snap):
        self.memory.restore(snap)

"""Cache-line geometry and persistency states for the simulated PM.

The paper's failure model (§3.1) assumes volatile CPU caches over durable
PM with 64-byte cache lines. A store leaves its line ``DIRTY`` in cache;
``CLWB`` initiates a write-back (``PENDING``); an ``SFENCE`` makes prior
write-backs durable (``CLEAN``). Non-temporal stores bypass the cache and
are modeled as immediately ``CLEAN`` (still requiring a fence for
*ordering*, which the detection logic does not depend on).
"""

import enum

#: Size of a simulated CPU cache line in bytes (x86).
CACHE_LINE_SIZE = 64

#: Size of the machine word used by the typed accessors.
WORD_SIZE = 8


class LineState(enum.Enum):
    """Persistency state of one cache line, as tracked by the substrate."""

    #: Line contents match the durable medium.
    CLEAN = "clean"
    #: Line has unwritten-back stores; contents lost on crash.
    DIRTY = "dirty"
    #: CLWB issued but not yet fenced; durability not guaranteed.
    PENDING = "pending"


def line_of(addr):
    """Return the cache-line index containing byte offset ``addr``."""
    return addr // CACHE_LINE_SIZE


def line_range(addr, size):
    """Return the range of cache-line indexes touched by ``[addr, addr+size)``."""
    if size <= 0:
        return range(0)
    first = line_of(addr)
    last = line_of(addr + size - 1)
    return range(first, last + 1)


def line_bounds(line):
    """Return ``(start, end)`` byte offsets of cache line ``line``."""
    start = line * CACHE_LINE_SIZE
    return start, start + CACHE_LINE_SIZE


def align_down(addr, alignment=CACHE_LINE_SIZE):
    """Round ``addr`` down to a multiple of ``alignment``."""
    return addr - (addr % alignment)


def align_up(addr, alignment=CACHE_LINE_SIZE):
    """Round ``addr`` up to a multiple of ``alignment``."""
    rem = addr % alignment
    return addr if rem == 0 else addr + alignment - rem

"""Cache-line geometry and persistency states for the simulated PM.

The paper's failure model (§3.1) assumes volatile CPU caches over durable
PM with 64-byte cache lines. A store leaves its line ``DIRTY`` in cache;
``CLWB`` initiates a write-back (``PENDING``); an ``SFENCE`` makes prior
write-backs durable (``CLEAN``). Non-temporal stores bypass the cache and
are modeled as immediately ``CLEAN`` (still requiring a fence for
*ordering*, which the detection logic does not depend on).
"""

import enum

#: Size of a simulated CPU cache line in bytes (x86).
CACHE_LINE_SIZE = 64

#: Size of the machine word used by the typed accessors.
WORD_SIZE = 8

#: Words per cache line; persistency tracking is a WORDS_PER_LINE-bit
#: mask per line (bit *i* = word at ``line*CACHE_LINE_SIZE + i*WORD_SIZE``
#: holds a non-persisted store).
WORDS_PER_LINE = CACHE_LINE_SIZE // WORD_SIZE

#: Mask with every word bit of one line set.
FULL_LINE_MASK = (1 << WORDS_PER_LINE) - 1

#: ``addr >> LINE_SHIFT`` is the line index; ``addr >> WORD_SHIFT`` the
#: global word index.
LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1
WORD_SHIFT = WORD_SIZE.bit_length() - 1


class LineState(enum.Enum):
    """Persistency state of one cache line, as tracked by the substrate."""

    #: Line contents match the durable medium.
    CLEAN = "clean"
    #: Line has unwritten-back stores; contents lost on crash.
    DIRTY = "dirty"
    #: CLWB issued but not yet fenced; durability not guaranteed.
    PENDING = "pending"


def line_of(addr):
    """Return the cache-line index containing byte offset ``addr``."""
    return addr // CACHE_LINE_SIZE


def line_range(addr, size):
    """Return the range of cache-line indexes touched by ``[addr, addr+size)``."""
    if size <= 0:
        return range(0)
    first = line_of(addr)
    last = line_of(addr + size - 1)
    return range(first, last + 1)


def words_of(addr, size):
    """Word-aligned byte offsets of every word touched by the access.

    Returns an empty range for ``size <= 0`` (e.g. clwb/sfence events).
    """
    if size <= 0:
        return range(0)
    first = addr - (addr % WORD_SIZE)
    last = (addr + size - 1) >> WORD_SHIFT << WORD_SHIFT
    return range(first, last + WORD_SIZE, WORD_SIZE)


def line_word_masks(addr, size):
    """Yield ``(line, mask)`` pairs covering ``[addr, addr+size)``.

    ``mask`` has bit *i* set when word *i* of ``line`` is touched. This is
    the geometry primitive behind the per-line word bitmasks in
    :class:`~repro.pmem.memory.PersistentMemory`.
    """
    if size <= 0:
        return
    first_word = addr >> WORD_SHIFT
    last_word = (addr + size - 1) >> WORD_SHIFT
    first_line = first_word >> 3
    last_line = last_word >> 3
    for line in range(first_line, last_line + 1):
        base = line << 3
        lo = first_word - base if line == first_line else 0
        hi = last_word - base if line == last_line else WORDS_PER_LINE - 1
        yield line, ((1 << (hi + 1)) - (1 << lo))


def line_bounds(line):
    """Return ``(start, end)`` byte offsets of cache line ``line``."""
    start = line * CACHE_LINE_SIZE
    return start, start + CACHE_LINE_SIZE


def align_down(addr, alignment=CACHE_LINE_SIZE):
    """Round ``addr`` down to a multiple of ``alignment``."""
    return addr - (addr % alignment)


def align_up(addr, alignment=CACHE_LINE_SIZE):
    """Round ``addr`` up to a multiple of ``alignment``."""
    rem = addr % alignment
    return addr if rem == 0 else addr + alignment - rem

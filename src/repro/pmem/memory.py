"""Simulated byte-addressable persistent memory with volatile CPU caches.

This module is the ground truth for the failure model assumed by the paper
(§3.1): stores land in a volatile cache and are only durable after an
explicit write-back (``CLWB``) followed by a fence (``SFENCE``), or when
issued as non-temporal stores. A crash discards every non-persisted line.

Two views are maintained:

* the *volatile* view — what loads observe while the system is running;
* the *persisted* view — what a crash image is built from.

Per-word last-writer records let checkers attribute a non-persisted read to
the thread and instruction that produced the dirty data, exactly like the
persistency-state hash table described in §4.3.
"""

import random

from .cacheline import (
    CACHE_LINE_SIZE,
    WORD_SIZE,
    LineState,
    align_down,
    line_bounds,
    line_range,
)
from .errors import OutOfBoundsError


class StoreRecord:
    """Metadata of one PM store, kept per dirty word.

    Attributes:
        addr: Byte offset of the store.
        size: Store size in bytes.
        thread_id: Identifier of the storing thread.
        instr_id: Instruction identifier (call-site) of the store.
        seq: Global sequence number (monotonic per memory instance).
        ntstore: Whether the store bypassed the cache.
    """

    __slots__ = ("addr", "size", "thread_id", "instr_id", "seq", "ntstore")

    def __init__(self, addr, size, thread_id, instr_id, seq, ntstore=False):
        self.addr = addr
        self.size = size
        self.thread_id = thread_id
        self.instr_id = instr_id
        self.seq = seq
        self.ntstore = ntstore

    def __repr__(self):
        kind = "ntstore" if self.ntstore else "store"
        return "<%s addr=%#x size=%d thread=%s instr=%s seq=%d>" % (
            kind,
            self.addr,
            self.size,
            self.thread_id,
            self.instr_id,
            self.seq,
        )


class MemorySnapshot:
    """Opaque deep snapshot of a :class:`PersistentMemory` instance."""

    __slots__ = ("volatile", "persisted", "line_states", "dirty_words",
                 "pending_by_thread", "seq")

    def __init__(self, volatile, persisted, line_states, dirty_words,
                 pending_by_thread, seq):
        self.volatile = volatile
        self.persisted = persisted
        self.line_states = line_states
        self.dirty_words = dirty_words
        self.pending_by_thread = pending_by_thread
        self.seq = seq


class PersistentMemory:
    """A flat simulated PM region with cache-line persistency tracking.

    Args:
        size: Pool size in bytes (rounded up to a cache-line multiple).
        pending_persists_on_crash: If True, lines in ``PENDING`` state (CLWB
            issued, fence not yet executed) survive crashes. The paper's
            checker is conservative and treats them as lost; that is the
            default here too.
        eadr: Model an extended-ADR platform (§6.6): CPU caches are inside
            the persistence domain, so every store is immediately durable
            and flush instructions become no-ops. PM Inter-thread
            Inconsistencies cannot occur, but PM Synchronization
            Inconsistencies still can — locks persisted in PM survive
            crashes regardless of where they were buffered.
    """

    def __init__(self, size, pending_persists_on_crash=False, eadr=False):
        size = ((size + CACHE_LINE_SIZE - 1) // CACHE_LINE_SIZE) * CACHE_LINE_SIZE
        self.size = size
        self.pending_persists_on_crash = pending_persists_on_crash
        self.eadr = eadr
        self._volatile = bytearray(size)
        self._persisted = bytearray(size)
        #: line index -> LineState; missing key means CLEAN.
        self._line_states = {}
        #: word-aligned offset -> StoreRecord of the latest non-persisted store.
        self._dirty_words = {}
        #: thread_id -> set of line indexes with an outstanding CLWB.
        self._pending_by_thread = {}
        self._seq = 0

    # ------------------------------------------------------------------
    # bounds helpers

    def _check(self, addr, size):
        if addr < 0 or size < 0 or addr + size > self.size:
            raise OutOfBoundsError(addr, size, self.size)

    def _words_of(self, addr, size):
        first = align_down(addr, WORD_SIZE)
        last = align_down(addr + size - 1, WORD_SIZE)
        return range(first, last + WORD_SIZE, WORD_SIZE)

    # ------------------------------------------------------------------
    # data path

    def store(self, addr, data, thread_id=None, instr_id=None, ntstore=False):
        """Write ``data`` at ``addr``; returns the :class:`StoreRecord`.

        A regular store dirties the touched cache lines. A non-temporal
        store writes through to the persisted view and leaves the touched
        words clean.
        """
        size = len(data)
        self._check(addr, size)
        self._seq += 1
        record = StoreRecord(addr, size, thread_id, instr_id, self._seq, ntstore)
        self._volatile[addr:addr + size] = data
        if self.eadr:
            ntstore = True  # battery-backed caches: every store is durable
        if ntstore:
            self._persisted[addr:addr + size] = data
            for word in self._words_of(addr, size):
                self._dirty_words.pop(word, None)
            for line in line_range(addr, size):
                if not self._line_has_dirty_words(line):
                    self._line_states.pop(line, None)
        else:
            for word in self._words_of(addr, size):
                self._dirty_words[word] = record
            for line in line_range(addr, size):
                self._line_states[line] = LineState.DIRTY
        return record

    def load(self, addr, size):
        """Return ``size`` bytes of the volatile view at ``addr``."""
        self._check(addr, size)
        return bytes(self._volatile[addr:addr + size])

    def load_persisted(self, addr, size):
        """Return ``size`` bytes of the *persisted* view at ``addr``."""
        self._check(addr, size)
        return bytes(self._persisted[addr:addr + size])

    def clwb(self, addr, thread_id=None):
        """Initiate write-back of the line containing ``addr`` (DIRTY→PENDING)."""
        self._check(addr, 1)
        for line in line_range(addr, 1):
            state = self._line_states.get(line, LineState.CLEAN)
            if state is LineState.CLEAN:
                continue
            self._line_states[line] = LineState.PENDING
            self._pending_by_thread.setdefault(thread_id, set()).add(line)

    def clflush(self, addr, thread_id=None):
        """Flush-and-persist immediately (CLFLUSH is ordered by itself)."""
        self._check(addr, 1)
        for line in line_range(addr, 1):
            self._persist_line(line)

    def sfence(self, thread_id=None):
        """Persist every line the thread has CLWB'd since its last fence."""
        pending = self._pending_by_thread.pop(thread_id, None)
        if not pending:
            return
        for line in pending:
            if self._line_states.get(line) is LineState.PENDING:
                self._persist_line(line)

    def _persist_line(self, line):
        start, end = line_bounds(line)
        end = min(end, self.size)
        self._persisted[start:end] = self._volatile[start:end]
        self._line_states.pop(line, None)
        for word in range(start, end, WORD_SIZE):
            self._dirty_words.pop(word, None)

    def _line_has_dirty_words(self, line):
        start, end = line_bounds(line)
        return any(word in self._dirty_words
                   for word in range(start, min(end, self.size), WORD_SIZE))

    def persist_all(self):
        """Persist the whole pool (used for clean-shutdown/setup phases)."""
        self._persisted[:] = self._volatile
        self._line_states.clear()
        self._dirty_words.clear()
        self._pending_by_thread.clear()

    # ------------------------------------------------------------------
    # persistency queries (the checkers' view)

    def line_state(self, addr):
        """Return the :class:`LineState` of the line containing ``addr``."""
        self._check(addr, 1)
        return self._line_states.get(addr // CACHE_LINE_SIZE, LineState.CLEAN)

    def is_persisted(self, addr, size):
        """True iff no byte in ``[addr, addr+size)`` has a non-persisted store."""
        self._check(addr, size)
        return not any(word in self._dirty_words
                       for word in self._words_of(addr, size))

    def nonpersisted_writers(self, addr, size):
        """Return StoreRecords of non-persisted stores overlapping the range."""
        self._check(addr, size)
        seen = []
        for word in self._words_of(addr, size):
            record = self._dirty_words.get(word)
            if record is not None and record not in seen:
                seen.append(record)
        return seen

    def dirty_line_count(self):
        """Number of lines currently not CLEAN."""
        return len(self._line_states)

    # ------------------------------------------------------------------
    # crashes and snapshots

    def crash_image(self, evict_fraction=0.0, rng=None):
        """Return the byte contents PM would hold after a crash right now.

        Args:
            evict_fraction: Probability that a DIRTY line was evicted by the
                hardware before the crash (arbitrary cache eviction, §2.1).
            rng: Optional ``random.Random`` for eviction sampling.
        """
        image = bytearray(self._persisted)
        survivors = []
        for line, state in self._line_states.items():
            if state is LineState.PENDING and self.pending_persists_on_crash:
                survivors.append(line)
            elif evict_fraction > 0.0:
                rng = rng or random.Random(0)
                if rng.random() < evict_fraction:
                    survivors.append(line)
        for line in survivors:
            start, end = line_bounds(line)
            end = min(end, self.size)
            image[start:end] = self._volatile[start:end]
        return bytes(image)

    def snapshot(self):
        """Capture a deep snapshot (volatile + persisted + metadata)."""
        return MemorySnapshot(
            bytearray(self._volatile),
            bytearray(self._persisted),
            dict(self._line_states),
            dict(self._dirty_words),
            {tid: set(lines) for tid, lines in self._pending_by_thread.items()},
            self._seq,
        )

    def restore(self, snap):
        """Restore a snapshot previously taken with :meth:`snapshot`."""
        self._volatile = bytearray(snap.volatile)
        self._persisted = bytearray(snap.persisted)
        self._line_states = dict(snap.line_states)
        self._dirty_words = dict(snap.dirty_words)
        self._pending_by_thread = {
            tid: set(lines) for tid, lines in snap.pending_by_thread.items()
        }
        self._seq = snap.seq

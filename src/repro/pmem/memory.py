"""Simulated byte-addressable persistent memory with volatile CPU caches.

This module is the ground truth for the failure model assumed by the paper
(§3.1): stores land in a volatile cache and are only durable after an
explicit write-back (``CLWB``) followed by a fence (``SFENCE``), or when
issued as non-temporal stores. A crash discards every non-persisted line.

Two views are maintained:

* the *volatile* view — what loads observe while the system is running;
* the *persisted* view — what a crash image is built from.

Per-word last-writer records let checkers attribute a non-persisted read to
the thread and instruction that produced the dirty data, exactly like the
persistency-state hash table described in §4.3.

Tracking layout
---------------

All per-line state lives in one dict, ``_lines``::

    line index -> [LineState, word mask, [StoreRecord] * WORDS_PER_LINE]

An entry exists iff its mask is nonzero (the line holds non-persisted
words); a missing line is CLEAN. Stores, flushes, and fences are then a
handful of integer mask operations per touched *line* instead of dict
churn per touched *word*, and ``is_persisted`` is a single mask test.

Two auxiliary indexes keep the hot paths O(touched lines):

* ``_pending_by_thread`` / ``_pending_tids`` — forward and reverse maps
  between threads and their outstanding CLWB lines. Whenever a line
  leaves PENDING (fence persist, clflush, ntstore overwrite, or a
  re-dirtying store) its membership is removed from *every* thread's
  pending set, so a fence from one thread can never leak — or stale-
  persist — lines another thread re-dirtied.
* ``_journal`` — the set of lines whose bytes changed since the last
  :meth:`snapshot`/:meth:`restore`. Restoring the snapshot a memory was
  last reset to copies only those lines back instead of both full pools.
"""

import random

from .cacheline import (
    CACHE_LINE_SIZE,
    LINE_SHIFT,
    WORD_SHIFT,
    WORD_SIZE,
    WORDS_PER_LINE,
    LineState,
)
from .errors import OutOfBoundsError

_DIRTY = LineState.DIRTY
_PENDING = LineState.PENDING
#: Words-per-line as a shift (8 words -> 3 bits of the word index).
_WPL_SHIFT = WORDS_PER_LINE.bit_length() - 1


class StoreRecord:
    """Metadata of one PM store, kept per dirty word.

    Attributes:
        addr: Byte offset of the store.
        size: Store size in bytes.
        thread_id: Identifier of the storing thread.
        instr_id: Instruction identifier (call-site) of the store. Always
            the resolved ``module:function:line`` string (or whatever the
            caller passes) — never an interned int — so scans and reports
            can substring-match it directly.
        seq: Global sequence number (monotonic per memory instance).
        ntstore: Whether the store bypassed the cache.
    """

    __slots__ = ("addr", "size", "thread_id", "instr_id", "seq", "ntstore")

    def __init__(self, addr, size, thread_id, instr_id, seq, ntstore=False):
        self.addr = addr
        self.size = size
        self.thread_id = thread_id
        self.instr_id = instr_id
        self.seq = seq
        self.ntstore = ntstore

    def __repr__(self):
        kind = "ntstore" if self.ntstore else "store"
        return "<%s addr=%#x size=%d thread=%s instr=%s seq=%d>" % (
            kind,
            self.addr,
            self.size,
            self.thread_id,
            self.instr_id,
            self.seq,
        )


class MemorySnapshot:
    """Opaque deep snapshot of a :class:`PersistentMemory` instance.

    ``origin`` records which memory produced it: restores onto the same
    memory while the snapshot is still its base replay only the
    journaled (touched) lines.
    """

    __slots__ = ("volatile", "persisted", "lines", "pending_by_thread",
                 "pending_tids", "seq", "origin")

    def __init__(self, volatile, persisted, lines, pending_by_thread,
                 pending_tids, seq, origin=None):
        self.volatile = volatile
        self.persisted = persisted
        self.lines = lines
        self.pending_by_thread = pending_by_thread
        self.pending_tids = pending_tids
        self.seq = seq
        self.origin = origin


class PersistentMemory:
    """A flat simulated PM region with cache-line persistency tracking.

    Args:
        size: Pool size in bytes (rounded up to a cache-line multiple).
        pending_persists_on_crash: If True, lines in ``PENDING`` state (CLWB
            issued, fence not yet executed) survive crashes. The paper's
            checker is conservative and treats them as lost; that is the
            default here too.
        eadr: Model an extended-ADR platform (§6.6): CPU caches are inside
            the persistence domain, so every store is immediately durable
            and flush instructions become no-ops. PM Inter-thread
            Inconsistencies cannot occur, but PM Synchronization
            Inconsistencies still can — locks persisted in PM survive
            crashes regardless of where they were buffered.
    """

    def __init__(self, size, pending_persists_on_crash=False, eadr=False):
        size = ((size + CACHE_LINE_SIZE - 1) // CACHE_LINE_SIZE) * CACHE_LINE_SIZE
        self.size = size
        self.pending_persists_on_crash = pending_persists_on_crash
        self.eadr = eadr
        self._volatile = bytearray(size)
        self._persisted = bytearray(size)
        #: line index -> [LineState, word mask, per-word StoreRecords];
        #: entry exists iff mask != 0 (otherwise the line is CLEAN).
        self._lines = {}
        #: thread_id -> set of line indexes with an outstanding CLWB.
        self._pending_by_thread = {}
        #: reverse index: line -> set of thread_ids holding it pending.
        self._pending_tids = {}
        #: lines whose volatile or persisted bytes changed since the last
        #: snapshot/restore; drives incremental checkpoint restores.
        self._journal = set()
        self._journal_full = False
        #: the snapshot this memory currently diverges from (if any).
        self._base = None
        self._seq = 0

    # ------------------------------------------------------------------
    # bounds helpers

    def _check(self, addr, size):
        if addr < 0 or size < 0 or addr + size > self.size:
            raise OutOfBoundsError(addr, size, self.size)

    # ------------------------------------------------------------------
    # data path

    def store(self, addr, data, thread_id=None, instr_id=None, ntstore=False):
        """Write ``data`` at ``addr``; returns the :class:`StoreRecord`.

        A regular store dirties the touched cache lines. A non-temporal
        store writes through to the persisted view and leaves the touched
        words clean.
        """
        size = len(data)
        if addr < 0 or addr + size > self.size:
            raise OutOfBoundsError(addr, size, self.size)
        self._seq += 1
        record = StoreRecord(addr, size, thread_id, instr_id, self._seq, ntstore)
        self._volatile[addr:addr + size] = data
        if size == 0:
            return record
        if self.eadr:
            ntstore = True  # battery-backed caches: every store is durable
        lines = self._lines
        journal = self._journal
        first_word = addr >> WORD_SHIFT
        last_word = (addr + size - 1) >> WORD_SHIFT
        first_line = first_word >> _WPL_SHIFT
        last_line = last_word >> _WPL_SHIFT
        if ntstore:
            self._persisted[addr:addr + size] = data
            for line in range(first_line, last_line + 1):
                journal.add(line)
                entry = lines.get(line)
                if entry is None:
                    continue
                base = line << _WPL_SHIFT
                lo = first_word - base if line == first_line else 0
                hi = last_word - base if line == last_line \
                    else WORDS_PER_LINE - 1
                remaining = entry[1] & ~((1 << (hi + 1)) - (1 << lo))
                if remaining:
                    entry[1] = remaining
                    writers = entry[2]
                    for w in range(lo, hi + 1):
                        writers[w] = None
                else:
                    if entry[0] is _PENDING:
                        self._unpend(line)
                    del lines[line]
        else:
            for line in range(first_line, last_line + 1):
                journal.add(line)
                base = line << _WPL_SHIFT
                lo = first_word - base if line == first_line else 0
                hi = last_word - base if line == last_line \
                    else WORDS_PER_LINE - 1
                entry = lines.get(line)
                if entry is None:
                    writers = [None] * WORDS_PER_LINE
                    lines[line] = [_DIRTY, (1 << (hi + 1)) - (1 << lo),
                                   writers]
                else:
                    if entry[0] is _PENDING:
                        # Re-dirtying a pending line cancels the write-
                        # back: a later fence must not persist it.
                        self._unpend(line)
                    entry[0] = _DIRTY
                    entry[1] |= (1 << (hi + 1)) - (1 << lo)
                    writers = entry[2]
                for w in range(lo, hi + 1):
                    writers[w] = record
        return record

    def load(self, addr, size):
        """Return ``size`` bytes of the volatile view at ``addr``."""
        self._check(addr, size)
        return bytes(self._volatile[addr:addr + size])

    def load_persisted(self, addr, size):
        """Return ``size`` bytes of the *persisted* view at ``addr``."""
        self._check(addr, size)
        return bytes(self._persisted[addr:addr + size])

    def clwb(self, addr, thread_id=None):
        """Initiate write-back of the line containing ``addr`` (DIRTY→PENDING)."""
        self._check(addr, 1)
        line = addr >> LINE_SHIFT
        entry = self._lines.get(line)
        if entry is None:
            return  # CLEAN: nothing to write back
        entry[0] = _PENDING
        self._pending_by_thread.setdefault(thread_id, set()).add(line)
        self._pending_tids.setdefault(line, set()).add(thread_id)

    def clflush(self, addr, thread_id=None):
        """Flush-and-persist immediately (CLFLUSH is ordered by itself)."""
        self._check(addr, 1)
        self._persist_line(addr >> LINE_SHIFT)

    def sfence(self, thread_id=None):
        """Persist every line the thread has CLWB'd since its last fence."""
        pending = self._pending_by_thread.pop(thread_id, None)
        if not pending:
            return
        lines = self._lines
        for line in pending:
            entry = lines.get(line)
            if entry is not None and entry[0] is _PENDING:
                self._persist_line(line)

    def _persist_line(self, line):
        entry = self._lines.pop(line, None)
        if entry is None:
            return  # already CLEAN: volatile == persisted for this line
        start = line << LINE_SHIFT
        end = start + CACHE_LINE_SIZE
        self._persisted[start:end] = self._volatile[start:end]
        self._journal.add(line)
        if entry[0] is _PENDING:
            self._unpend(line)

    def _unpend(self, line):
        """Drop ``line`` from every thread's pending set (leaves PENDING)."""
        tids = self._pending_tids.pop(line, None)
        if not tids:
            return
        by_thread = self._pending_by_thread
        for tid in tids:
            bucket = by_thread.get(tid)
            if bucket is not None:
                bucket.discard(line)
                if not bucket:
                    del by_thread[tid]

    def persist_all(self):
        """Persist the whole pool (used for clean-shutdown/setup phases)."""
        self._persisted[:] = self._volatile
        self._lines.clear()
        self._pending_by_thread.clear()
        self._pending_tids.clear()
        self._journal_full = True

    # ------------------------------------------------------------------
    # persistency queries (the checkers' view)

    def line_state(self, addr):
        """Return the :class:`LineState` of the line containing ``addr``."""
        self._check(addr, 1)
        entry = self._lines.get(addr >> LINE_SHIFT)
        return LineState.CLEAN if entry is None else entry[0]

    def is_persisted(self, addr, size):
        """True iff no byte in ``[addr, addr+size)`` has a non-persisted store."""
        self._check(addr, size)
        lines = self._lines
        if not lines or size <= 0:
            return True
        first_word = addr >> WORD_SHIFT
        last_word = (addr + size - 1) >> WORD_SHIFT
        first_line = first_word >> _WPL_SHIFT
        last_line = last_word >> _WPL_SHIFT
        if first_line == last_line:
            entry = lines.get(first_line)
            if entry is None:
                return True
            base = first_line << _WPL_SHIFT
            mask = (1 << (last_word - base + 1)) - (1 << (first_word - base))
            return not (entry[1] & mask)
        for line in range(first_line, last_line + 1):
            entry = lines.get(line)
            if entry is None:
                continue
            base = line << _WPL_SHIFT
            lo = first_word - base if line == first_line else 0
            hi = last_word - base if line == last_line else WORDS_PER_LINE - 1
            if entry[1] & ((1 << (hi + 1)) - (1 << lo)):
                return False
        return True

    def nonpersisted_writers(self, addr, size):
        """Return StoreRecords of non-persisted stores overlapping the range."""
        self._check(addr, size)
        lines = self._lines
        if not lines or size <= 0:
            return []
        first_word = addr >> WORD_SHIFT
        last_word = (addr + size - 1) >> WORD_SHIFT
        first_line = first_word >> _WPL_SHIFT
        last_line = last_word >> _WPL_SHIFT
        seen = []
        for line in range(first_line, last_line + 1):
            entry = lines.get(line)
            if entry is None:
                continue
            base = line << _WPL_SHIFT
            lo = first_word - base if line == first_line else 0
            hi = last_word - base if line == last_line else WORDS_PER_LINE - 1
            masked = entry[1] & ((1 << (hi + 1)) - (1 << lo))
            if not masked:
                continue
            writers = entry[2]
            while masked:
                low = masked & -masked
                record = writers[low.bit_length() - 1]
                if record is not None and record not in seen:
                    seen.append(record)
                masked ^= low
        return seen

    def dirty_line_count(self):
        """Number of lines currently not CLEAN."""
        return len(self._lines)

    def dirty_words(self):
        """Yield ``(word_addr, StoreRecord)`` for every non-persisted word,
        in ascending address order (the missing-flush scan's input)."""
        lines = self._lines
        for line in sorted(lines):
            entry = lines[line]
            mask = entry[1]
            writers = entry[2]
            base = line << LINE_SHIFT
            while mask:
                low = mask & -mask
                index = low.bit_length() - 1
                yield base + (index << WORD_SHIFT), writers[index]
                mask ^= low

    # ------------------------------------------------------------------
    # crashes and snapshots

    def crash_image(self, evict_fraction=0.0, rng=None):
        """Return the byte contents PM would hold after a crash right now.

        Args:
            evict_fraction: Probability that a DIRTY line was evicted by the
                hardware before the crash (arbitrary cache eviction, §2.1);
                each line is sampled independently.
            rng: ``random.Random`` for eviction sampling. Pass the campaign
                RNG so eviction patterns vary across campaigns/seeds; the
                seed-0 fallback exists only for ad-hoc standalone use.
        """
        if evict_fraction > 0.0 and rng is None:
            rng = random.Random(0)
        image = bytearray(self._persisted)
        survivors = []
        for line, entry in self._lines.items():
            if entry[0] is _PENDING and self.pending_persists_on_crash:
                survivors.append(line)
            elif evict_fraction > 0.0 and rng.random() < evict_fraction:
                survivors.append(line)
        for line in survivors:
            start = line << LINE_SHIFT
            end = start + CACHE_LINE_SIZE
            image[start:end] = self._volatile[start:end]
        return bytes(image)

    def snapshot(self):
        """Capture a deep snapshot (volatile + persisted + metadata).

        Also resets the dirty-line journal: until the next snapshot or a
        restore of a *different* snapshot, this memory knows exactly which
        lines diverged and :meth:`restore` copies only those.
        """
        snap = MemorySnapshot(
            bytes(self._volatile),
            bytes(self._persisted),
            {line: (entry[0], entry[1], tuple(entry[2]))
             for line, entry in self._lines.items()},
            {tid: frozenset(bucket)
             for tid, bucket in self._pending_by_thread.items()},
            {line: frozenset(tids)
             for line, tids in self._pending_tids.items()},
            self._seq,
            origin=self,
        )
        self._journal = set()
        self._journal_full = False
        self._base = snap
        return snap

    def restore(self, snap):
        """Restore a snapshot previously taken with :meth:`snapshot`.

        When ``snap`` is the snapshot this memory last diverged from (the
        common checkpoint-per-campaign pattern), only journaled lines are
        copied back — O(touched lines), not O(pool size).
        """
        if snap is self._base and not self._journal_full:
            volatile = self._volatile
            persisted = self._persisted
            snap_vol = snap.volatile
            snap_per = snap.persisted
            for line in self._journal:
                start = line << LINE_SHIFT
                end = start + CACHE_LINE_SIZE
                volatile[start:end] = snap_vol[start:end]
                persisted[start:end] = snap_per[start:end]
            self._journal.clear()
        else:
            self._volatile = bytearray(snap.volatile)
            self._persisted = bytearray(snap.persisted)
            self._journal = set()
            self._journal_full = False
            self._base = snap if snap.origin is self else None
        self._lines = {line: [state, mask, list(writers)]
                       for line, (state, mask, writers) in snap.lines.items()}
        self._pending_by_thread = {tid: set(bucket)
                                   for tid, bucket in
                                   snap.pending_by_thread.items()}
        self._pending_tids = {line: set(tids)
                              for line, tids in snap.pending_tids.items()}
        self._seq = snap.seq

"""Instrumentation layer: hooked PM access API, taint tracking, annotations."""

from .annotations import AnnotationRegistry, SyncVarAnnotation
from .callsite import CallSiteTable, call_site, stack_trace
from .context import InstrumentationContext
from .events import Observer, PmAccessEvent
from .hooks import PmView
from .taint import (
    EMPTY,
    TaintLabel,
    TaintedBytes,
    TaintedInt,
    merge_taints,
    taint_of,
    with_taint,
)

__all__ = [
    "AnnotationRegistry",
    "SyncVarAnnotation",
    "CallSiteTable",
    "call_site",
    "stack_trace",
    "InstrumentationContext",
    "Observer",
    "PmAccessEvent",
    "PmView",
    "EMPTY",
    "TaintLabel",
    "TaintedInt",
    "TaintedBytes",
    "taint_of",
    "with_taint",
    "merge_taints",
]

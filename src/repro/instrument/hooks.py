"""The instrumented PM access API used by target programs.

Every method of :class:`PmView` corresponds to an instruction the original
LLVM pass hooks: loads, stores, non-temporal stores, CAS, ``CLWB``,
``SFENCE``. Each access

1. gives the sync-point controller a chance to stall the thread
   (``cond_wait`` before loads, ``cond_signal`` after stores, §4.2.2),
2. passes through a scheduler yield point (the preemption point),
3. performs the access against the simulated PM,
4. publishes a :class:`~repro.instrument.events.PmAccessEvent` so checkers
   and coverage collectors observe it,
5. propagates taint labels into/out of the loaded or stored value.

Instruction ids on events are *interned ints* from the context's
:class:`~repro.instrument.callsite.CallSiteTable`; ``StoreRecord``
attribution in the memory substrate receives the resolved string (one
list index here) so scans and reports keep their ``module:function:line``
form without per-event resolution downstream.
"""

import struct

from ..pmem.cacheline import CACHE_LINE_SIZE, align_down
from .events import PmAccessEvent
from .taint import EMPTY, merge_taints, taint_of, with_taint

_U64 = struct.Struct("<Q")
_U64_MASK = (1 << 64) - 1


class PmView:
    """Instrumented view of one PM pool for one campaign.

    Args:
        pool: The :class:`~repro.pmem.pool.PmemPool` under test.
        scheduler: The cooperative scheduler (may be None for recovery-only
            views; yields become no-ops).
        ctx: The :class:`~repro.instrument.context.InstrumentationContext`.
    """

    def __init__(self, pool, scheduler, ctx):
        self.pool = pool
        self.scheduler = scheduler
        self.ctx = ctx
        # Bind the hot-path collaborators once per campaign.
        self._memory = pool.memory
        self._sites = ctx.callsites
        # Bind observability counters once; the disabled path then costs
        # a single attribute-is-None check per instrumented access.
        metrics = ctx.metrics
        if metrics is not None:
            self._m_loads = metrics.counter("pm.loads")
            self._m_stores = metrics.counter("pm.stores")
            self._m_cas = metrics.counter("pm.cas")
            self._m_flushes = metrics.counter("pm.flushes")
            self._m_fences = metrics.counter("pm.fences")
        else:
            self._m_loads = self._m_stores = self._m_cas = None
            self._m_flushes = self._m_fences = None

    # ------------------------------------------------------------------
    # plumbing

    def _thread(self):
        if self.scheduler is None:
            return None
        return self.scheduler.current()

    def _yield(self):
        if self.scheduler is not None:
            self.scheduler.yield_point("op")

    def _stack(self, interesting):
        if interesting and self.ctx.capture_stacks:
            return self._sites.intern_stack(skip=3)
        return ()

    # ------------------------------------------------------------------
    # loads

    def _load(self, addr, size, decode):
        if self._m_loads is not None:
            self._m_loads.inc()
        addr_int = int(addr)
        instr = self._sites.intern_caller(skip=3)
        thread = self._thread()
        if self.ctx.controller is not None and thread is not None:
            self.ctx.controller.before_load(addr_int, instr, thread)
        self._yield()
        writers = self._memory.nonpersisted_writers(addr_int, size)
        raw = self._memory.load(addr_int, size)
        event = PmAccessEvent(
            "load", addr_int, size, decode(raw), thread, instr,
            self._stack(bool(writers)), writers,
        )
        minted = self.ctx.dispatch_load(event)
        labels = self.ctx.shadow_load(addr_int, size)
        if minted:
            labels = labels | minted
        value = decode(raw)
        if labels and self.ctx.taint_enabled:
            value = with_taint(value, labels)
        return value

    def load_u64(self, addr):
        """Load a 64-bit word; returns a (possibly tainted) int."""
        return self._load(addr, 8, lambda raw: _U64.unpack(raw)[0])

    def load_bytes(self, addr, size):
        """Load ``size`` bytes; returns (possibly tainted) bytes."""
        return self._load(addr, size, bytes)

    # ------------------------------------------------------------------
    # stores

    def _store(self, addr, size, value, encoded, ntstore):
        if self._m_stores is not None:
            self._m_stores.inc()
        addr_int = int(addr)
        instr = self._sites.intern_caller(skip=3)
        thread = self._thread()
        self._yield()
        content_taint = taint_of(value)
        addr_taint = taint_of(addr)
        taint = content_taint | addr_taint
        tid = thread.tid if thread is not None else -1
        memory = self._memory
        same_value = memory.load(addr_int, size) == encoded
        memory.store(addr_int, encoded, tid, self._sites.name(instr),
                     ntstore=ntstore)
        self.ctx.shadow_store(addr_int, size, content_taint)
        event = PmAccessEvent(
            "ntstore" if ntstore else "store", addr_int, size, value,
            thread, instr, self._stack(bool(taint)), (), taint, addr_taint,
            same_value=same_value,
        )
        self.ctx.dispatch_store(event)
        if self.ctx.controller is not None and thread is not None:
            self.ctx.controller.after_store(addr_int, instr, thread)

    def store_u64(self, addr, value):
        """Cached 64-bit store (leaves the line dirty until flushed)."""
        self._store(addr, 8, value, _U64.pack(int(value) & _U64_MASK),
                    ntstore=False)

    def ntstore_u64(self, addr, value):
        """Non-temporal 64-bit store (write-through, immediately durable)."""
        self._store(addr, 8, value, _U64.pack(int(value) & _U64_MASK),
                    ntstore=True)

    def store_bytes(self, addr, data):
        self._store(addr, len(data), data, bytes(data), ntstore=False)

    def ntstore_bytes(self, addr, data):
        self._store(addr, len(data), data, bytes(data), ntstore=True)

    # ------------------------------------------------------------------
    # read-modify-write

    def cas_u64(self, addr, expected, new):
        """Atomic compare-and-swap on a PM word.

        Returns ``(success, old_value)``. The load and conditional store
        happen without an intervening preemption point, like a LOCK-
        prefixed CMPXCHG.
        """
        if self._m_cas is not None:
            self._m_cas.inc()
        addr_int = int(addr)
        instr = self._sites.intern_caller()
        thread = self._thread()
        self._yield()
        memory = self._memory
        writers = memory.nonpersisted_writers(addr_int, 8)
        old = _U64.unpack(memory.load(addr_int, 8))[0]
        load_event = PmAccessEvent(
            "load", addr_int, 8, old, thread, instr,
            self._stack(bool(writers)), writers,
        )
        minted = self.ctx.dispatch_load(load_event)
        labels = self.ctx.shadow_load(addr_int, 8) | minted
        old_value = with_taint(old, labels) if labels else old
        if old != int(expected):
            return False, old_value
        content_taint = taint_of(new)
        addr_taint = taint_of(addr)
        tid = thread.tid if thread is not None else -1
        memory.store(addr_int, _U64.pack(int(new) & _U64_MASK),
                     tid, self._sites.name(instr), ntstore=False)
        self.ctx.shadow_store(addr_int, 8, content_taint)
        store_event = PmAccessEvent(
            "cas", addr_int, 8, new, thread, instr,
            self._stack(bool(content_taint | addr_taint)), (),
            content_taint | addr_taint, addr_taint,
        )
        self.ctx.dispatch_store(store_event)
        if self.ctx.controller is not None and thread is not None:
            self.ctx.controller.after_store(addr_int, instr, thread)
        return True, old_value

    # ------------------------------------------------------------------
    # persistency instructions

    def clwb(self, addr):
        if self._m_flushes is not None:
            self._m_flushes.inc()
        addr_int = int(addr)
        instr = self._sites.intern_caller()
        thread = self._thread()
        self._yield()
        tid = thread.tid if thread is not None else -1
        self._memory.clwb(addr_int, tid)
        self.ctx.dispatch_flush(PmAccessEvent(
            "clwb", addr_int, 0, None, thread, instr))

    def sfence(self):
        if self._m_fences is not None:
            self._m_fences.inc()
        instr = self._sites.intern_caller()
        thread = self._thread()
        self._yield()
        tid = thread.tid if thread is not None else -1
        self._memory.sfence(tid)
        self.ctx.dispatch_fence(PmAccessEvent(
            "sfence", None, 0, None, thread, instr))

    def flush_range(self, addr, size):
        """CLWB every line covering ``[addr, addr+size)`` (no fence)."""
        addr_int = int(addr)
        start = align_down(addr_int, CACHE_LINE_SIZE)
        for line_addr in range(start, addr_int + max(size, 1), CACHE_LINE_SIZE):
            self.clwb(line_addr)

    def persist(self, addr, size):
        """The common ``CLWB...; SFENCE`` persistence idiom."""
        self.flush_range(addr, size)
        self.sfence()

"""Per-campaign instrumentation context: observer fan-out + shadow taint.

The context is the glue between the hook layer (:mod:`hooks`) and the
consumers: PM checkers (:mod:`repro.detect.checkers`), coverage collectors
and the shared-access priority queue (:mod:`repro.core`), and the
sync-point controller. It also keeps DFSan-style *shadow taint*: labels of
values stored to PM propagate to later loads of the same words, so
multi-hop flows (store tainted → load → store elsewhere) are tracked.
"""

from ..pmem.cacheline import WORD_SIZE, align_down
from .taint import EMPTY


class InstrumentationContext:
    """State shared by all hooks of one fuzz campaign.

    Args:
        annotations: Optional :class:`~repro.instrument.annotations.
            AnnotationRegistry` of the target.
        taint_enabled: Disable to measure the taint ablation.
        capture_stacks: Record stacks for candidate loads / annotated
            stores (needed by the whitelist and bug reports).
        metrics: Optional :class:`~repro.obs.metrics.Metrics` registry;
            hooks bind their counters from it once at construction, so
            the disabled path costs one None-check per access.
    """

    def __init__(self, annotations=None, taint_enabled=True,
                 capture_stacks=True, metrics=None):
        self.annotations = annotations
        self.taint_enabled = taint_enabled
        self.capture_stacks = capture_stacks
        self.metrics = metrics
        self.observers = []
        #: Sync-point controller (duck-typed: before_load / after_store).
        self.controller = None
        #: word offset -> frozenset of labels carried by the stored value.
        self._shadow = {}

    def add_observer(self, observer):
        self.observers.append(observer)
        return observer

    # ------------------------------------------------------------------
    # shadow taint

    def _words(self, addr, size):
        first = align_down(addr, WORD_SIZE)
        last = align_down(addr + max(size, 1) - 1, WORD_SIZE)
        return range(first, last + WORD_SIZE, WORD_SIZE)

    def shadow_store(self, addr, size, labels):
        if not self.taint_enabled:
            return
        for word in self._words(addr, size):
            if labels:
                self._shadow[word] = labels
            else:
                self._shadow.pop(word, None)

    def shadow_load(self, addr, size):
        if not self.taint_enabled:
            return EMPTY
        labels = EMPTY
        for word in self._words(addr, size):
            extra = self._shadow.get(word)
            if extra:
                labels = labels | extra
        return labels

    # ------------------------------------------------------------------
    # dispatch

    def dispatch_load(self, event):
        """Fan a load event out; returns labels minted by the checkers."""
        labels = EMPTY
        for observer in self.observers:
            minted = observer.on_load(event)
            if minted:
                labels = labels | minted
        return labels

    def dispatch_store(self, event):
        for observer in self.observers:
            observer.on_store(event)
        if self.annotations is not None:
            annotation = self.annotations.lookup(event.addr, event.size)
            if annotation is not None:
                for observer in self.observers:
                    observer.on_annotated_store(annotation, event)

    def dispatch_flush(self, event):
        for observer in self.observers:
            observer.on_flush(event)

    def dispatch_fence(self, event):
        for observer in self.observers:
            observer.on_fence(event)

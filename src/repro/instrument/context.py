"""Per-campaign instrumentation context: observer fan-out + shadow taint.

The context is the glue between the hook layer (:mod:`hooks`) and the
consumers: PM checkers (:mod:`repro.detect.checkers`), coverage collectors
and the shared-access priority queue (:mod:`repro.core`), and the
sync-point controller. It also keeps DFSan-style *shadow taint*: labels of
values stored to PM propagate to later loads of the same words, so
multi-hop flows (store tainted → load → store elsewhere) are tracked.
"""

from ..pmem.cacheline import words_of
from .callsite import CallSiteTable
from .taint import EMPTY


class InstrumentationContext:
    """State shared by all hooks of one fuzz campaign.

    Args:
        annotations: Optional :class:`~repro.instrument.annotations.
            AnnotationRegistry` of the target.
        taint_enabled: Disable to measure the taint ablation.
        capture_stacks: Record stacks for candidate loads / annotated
            stores (needed by the whitelist and bug reports).
        metrics: Optional :class:`~repro.obs.metrics.Metrics` registry;
            hooks bind their counters from it once at construction, so
            the disabled path costs one None-check per access.
        callsites: Optional :class:`~repro.instrument.callsite.
            CallSiteTable`. The engine passes one table per fuzzing run
            (interned ids must stay comparable across campaigns); a
            standalone context creates its own.
    """

    def __init__(self, annotations=None, taint_enabled=True,
                 capture_stacks=True, metrics=None, callsites=None):
        self.annotations = annotations
        self.taint_enabled = taint_enabled
        self.capture_stacks = capture_stacks
        self.metrics = metrics
        self.callsites = callsites if callsites is not None \
            else CallSiteTable()
        self.observers = []
        #: Sync-point controller (duck-typed: before_load / after_store).
        self.controller = None
        #: word offset -> frozenset of labels carried by the stored value.
        self._shadow = {}

    def add_observer(self, observer):
        # Observers that resolve interned instruction ids expose a
        # ``callsites`` attribute; wire them to this context's table
        # unless they were constructed with one explicitly.
        if getattr(observer, "callsites", False) is None:
            observer.callsites = self.callsites
        self.observers.append(observer)
        return observer

    # ------------------------------------------------------------------
    # shadow taint

    def _words(self, addr, size):
        return words_of(addr, max(size, 1))

    def shadow_store(self, addr, size, labels):
        if not self.taint_enabled:
            return
        shadow = self._shadow
        if labels:
            for word in words_of(addr, max(size, 1)):
                shadow[word] = labels
        elif shadow:
            for word in words_of(addr, max(size, 1)):
                shadow.pop(word, None)

    def shadow_load(self, addr, size):
        if not self.taint_enabled:
            return EMPTY
        shadow = self._shadow
        if not shadow:
            return EMPTY
        labels = EMPTY
        for word in words_of(addr, max(size, 1)):
            extra = shadow.get(word)
            if extra:
                labels = labels | extra
        return labels

    # ------------------------------------------------------------------
    # dispatch

    def dispatch_load(self, event):
        """Fan a load event out; returns labels minted by the checkers."""
        labels = EMPTY
        for observer in self.observers:
            minted = observer.on_load(event)
            if minted:
                labels = labels | minted
        return labels

    def dispatch_store(self, event):
        for observer in self.observers:
            observer.on_store(event)
        if self.annotations is not None:
            annotation = self.annotations.lookup(event.addr, event.size)
            if annotation is not None:
                for observer in self.observers:
                    observer.on_annotated_store(annotation, event)

    def dispatch_flush(self, event):
        for observer in self.observers:
            observer.on_flush(event)

    def dispatch_fence(self, event):
        for observer in self.observers:
            observer.on_fence(event)

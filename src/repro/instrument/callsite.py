"""Instruction identifiers and stack traces for instrumented PM accesses.

The LLVM pass in the original system assigns each instrumented instruction
a unique integer ID. Here the "instruction" is the call site of a
:class:`~repro.instrument.hooks.PmView` method, identified by the caller's
``module:function:line``. Bug deduplication ("same store instruction",
§6.2) and the whitelist ("locations of codes", §4.4) both key on these.
"""

import sys

_INTERNAL_PREFIXES = (
    "repro.instrument",
    "repro.pmem",
    "repro.runtime.scheduler",
)


def _describe(frame):
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return "%s:%s:%d" % (module, code.co_name, frame.f_lineno)


def call_site(skip=2):
    """Instruction ID of the first caller outside the instrumentation layer.

    Args:
        skip: Frames to skip before searching (the hook method itself).
    """
    frame = sys._getframe(skip)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not any(module.startswith(p) for p in _INTERNAL_PREFIXES):
            return _describe(frame)
        frame = frame.f_back
    return "<unknown>"


def stack_trace(skip=2, limit=16):
    """Call-site list from innermost outwards, excluding instrumentation."""
    frames = []
    frame = sys._getframe(skip)
    while frame is not None and len(frames) < limit:
        module = frame.f_globals.get("__name__", "")
        if not any(module.startswith(p) for p in _INTERNAL_PREFIXES):
            frames.append(_describe(frame))
        frame = frame.f_back
    return frames

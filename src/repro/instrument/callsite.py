"""Instruction identifiers and stack traces for instrumented PM accesses.

The LLVM pass in the original system assigns each instrumented instruction
a unique integer ID. Here the "instruction" is the call site of a
:class:`~repro.instrument.hooks.PmView` method, identified by the caller's
``module:function:line``. Bug deduplication ("same store instruction",
§6.2) and the whitelist ("locations of codes", §4.4) both key on these.

Two representations exist:

* **Interned ints** — :class:`CallSiteTable` assigns each distinct call
  site a small integer the first time it is seen, cached per
  ``(f_code, f_lineno)`` so the hot path pays one frame fetch plus one
  dict hit instead of string formatting per access. Events, coverage
  sets, the priority queue, and sync-point bookkeeping all carry these.
* **Strings** — the table's string table resolves an id back to its
  ``module:function:line`` form at the detection boundary, so records,
  dedup keys, whitelist entries, and reports look exactly like before
  (and stay comparable across runs and parallel workers).

Ids are canonicalized through the string: two code objects that format to
the same ``module:function:line`` share one id, keeping id↔string a
bijection (coverage counts cannot drift from string-keyed behaviour).

The module-level :func:`call_site`/:func:`stack_trace` functions remain
for uninstrumented callers (recovery views, tests) and always return
strings.
"""

import sys

_INTERNAL_PREFIXES = (
    "repro.instrument",
    "repro.pmem",
    "repro.runtime.scheduler",
)


def _describe(frame):
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    return "%s:%s:%d" % (module, code.co_name, frame.f_lineno)


class CallSiteTable:
    """Per-run interning table for call-site instruction IDs.

    One table spans all campaigns of a fuzzing run (the engine's skip
    carry-over, coverage sets, and priority queue compare ids across
    campaigns), created in :meth:`repro.core.engine.PMRace.run` and
    threaded through the campaign into the instrumentation context.
    """

    __slots__ = ("_by_frame", "_by_name", "_names", "_code_internal")

    def __init__(self):
        #: (f_code, f_lineno) -> interned id (the hot-path cache).
        self._by_frame = {}
        #: canonical string -> interned id (makes id↔string a bijection).
        self._by_name = {}
        #: interned id -> canonical string.
        self._names = []
        #: f_code -> bool: is the frame's module instrumentation-internal?
        self._code_internal = {}

    def __len__(self):
        return len(self._names)

    # ------------------------------------------------------------------
    # interning (hot path)

    def intern_name(self, text):
        """Intern an explicit ``module:function:line`` string."""
        by_name = self._by_name
        site_id = by_name.get(text)
        if site_id is None:
            site_id = len(self._names)
            by_name[text] = site_id
            self._names.append(text)
        return site_id

    def _intern_frame(self, frame):
        key = (frame.f_code, frame.f_lineno)
        site_id = self._by_frame.get(key)
        if site_id is None:
            site_id = self.intern_name(_describe(frame))
            self._by_frame[key] = site_id
        return site_id

    def intern_caller(self, skip=2):
        """Interned id of the first caller outside the instrumentation layer.

        Args:
            skip: Frames to skip before searching (the hook method itself).
        """
        frame = sys._getframe(skip)
        code_internal = self._code_internal
        while frame is not None:
            code = frame.f_code
            internal = code_internal.get(code)
            if internal is None:
                internal = frame.f_globals.get("__name__", "") \
                    .startswith(_INTERNAL_PREFIXES)
                code_internal[code] = internal
            if not internal:
                return self._intern_frame(frame)
            frame = frame.f_back
        return self.intern_name("<unknown>")

    def intern_stack(self, skip=2, limit=16):
        """Interned call-site ids from innermost outwards, as a tuple."""
        frames = []
        frame = sys._getframe(skip)
        code_internal = self._code_internal
        while frame is not None and len(frames) < limit:
            code = frame.f_code
            internal = code_internal.get(code)
            if internal is None:
                internal = frame.f_globals.get("__name__", "") \
                    .startswith(_INTERNAL_PREFIXES)
                code_internal[code] = internal
            if not internal:
                frames.append(self._intern_frame(frame))
            frame = frame.f_back
        return tuple(frames)

    # ------------------------------------------------------------------
    # resolution (detection boundary)

    def name(self, site_id):
        """``module:function:line`` of an interned id.

        Non-ids (already-resolved strings, ``None`` from uninstrumented
        events) pass through unchanged, so boundary code can resolve
        unconditionally.
        """
        names = self._names
        if type(site_id) is int and 0 <= site_id < len(names):
            return names[site_id]
        return site_id

    def names(self, site_ids):
        """Resolve a sequence of ids; returns a tuple of strings."""
        name = self.name
        return tuple(name(site_id) for site_id in site_ids)

    def snapshot(self):
        """The full string table, index == interned id (repro bundles)."""
        return list(self._names)


def call_site(skip=2):
    """Instruction ID (string form) of the first caller outside the
    instrumentation layer.

    Args:
        skip: Frames to skip before searching (the hook method itself).
    """
    frame = sys._getframe(skip)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if not module.startswith(_INTERNAL_PREFIXES):
            return _describe(frame)
        frame = frame.f_back
    return "<unknown>"


def stack_trace(skip=2, limit=16):
    """Call-site list from innermost outwards, excluding instrumentation."""
    frames = []
    frame = sys._getframe(skip)
    while frame is not None and len(frames) < limit:
        module = frame.f_globals.get("__name__", "")
        if not module.startswith(_INTERNAL_PREFIXES):
            frames.append(_describe(frame))
        frame = frame.f_back
    return frames

"""Value-level dynamic taint tracking (the DataFlowSanitizer substitute).

A taint label is minted whenever a thread reads *non-persisted* PM data
(an inconsistency candidate, Definition 1). The label rides on the value
through arithmetic and byte manipulation; if a labeled value later flows
into a PM write — either as the *content* or as the *address* — the write
is a durable side effect based on non-persisted data, confirming a PM
Inter-thread (or Intra-thread) Inconsistency (Definition 2, §4.3).
"""

EMPTY = frozenset()


class TaintLabel:
    """One taint source: the candidate read that minted the label.

    Labels live on the hot path, so the two sites carry different id
    forms (see ``instrument/callsite.py``): ``read_instr`` is the raw
    *interned int* straight off the load event, while ``write_instr``
    arrives already resolved to its ``module:function:line`` string
    (the hook layer resolves store sites when attributing
    ``StoreRecord`` writers). Anything user-facing goes through the
    candidate record, which holds both sites as resolved strings.

    Attributes:
        candidate_id: Index of the inconsistency-candidate record.
        read_instr: Interned int id of the non-persisted load.
        write_instr: Resolved ``module:function:line`` string of the
            store that produced the data.
        writer_tid / reader_tid: Thread identities (inter vs intra).
    """

    __slots__ = ("candidate_id", "read_instr", "write_instr",
                 "writer_tid", "reader_tid")

    def __init__(self, candidate_id, read_instr, write_instr,
                 writer_tid, reader_tid):
        self.candidate_id = candidate_id
        self.read_instr = read_instr
        self.write_instr = write_instr
        self.writer_tid = writer_tid
        self.reader_tid = reader_tid

    @property
    def cross_thread(self):
        return self.writer_tid != self.reader_tid

    def __repr__(self):
        kind = "inter" if self.cross_thread else "intra"
        return "<TaintLabel #%d %s %s->%s>" % (
            self.candidate_id, kind, self.write_instr, self.read_instr)


def taint_of(value):
    """The label set carried by ``value`` (empty for untainted values)."""
    return getattr(value, "labels", EMPTY)


def merge_taints(*values):
    """Union of the label sets of all ``values``."""
    labels = EMPTY
    for value in values:
        extra = taint_of(value)
        if extra:
            labels = labels | extra
    return labels


class TaintedInt(int):
    """An ``int`` carrying taint labels; arithmetic propagates them."""

    def __new__(cls, value, labels=EMPTY):
        self = super().__new__(cls, value)
        self.labels = frozenset(labels)
        return self

    def __repr__(self):
        return "TaintedInt(%d, %d labels)" % (int(self), len(self.labels))


class TaintedBytes(bytes):
    """``bytes`` carrying taint labels; slicing/concat propagate them."""

    def __new__(cls, value, labels=EMPTY):
        self = super().__new__(cls, value)
        self.labels = frozenset(labels)
        return self

    def __getitem__(self, item):
        result = super().__getitem__(item)
        if isinstance(item, slice):
            return TaintedBytes(result, self.labels)
        return TaintedInt(result, self.labels)

    def __add__(self, other):
        return TaintedBytes(bytes(self) + bytes(other),
                            self.labels | taint_of(other))

    def __radd__(self, other):
        return TaintedBytes(bytes(other) + bytes(self),
                            self.labels | taint_of(other))

    def __repr__(self):
        return "TaintedBytes(%r, %d labels)" % (bytes(self), len(self.labels))


def with_taint(value, labels):
    """Wrap ``value`` so it carries ``labels`` (no-op if labels empty)."""
    if not labels:
        return value
    merged = frozenset(labels) | taint_of(value)
    if isinstance(value, bool):
        return TaintedInt(int(value), merged)
    if isinstance(value, int):
        return TaintedInt(value, merged)
    if isinstance(value, (bytes, bytearray)):
        return TaintedBytes(bytes(value), merged)
    raise TypeError("cannot taint value of type %s" % type(value).__name__)


def _binary(name):
    int_op = getattr(int, name)

    def op(self, other):
        result = int_op(int(self), int(other) if isinstance(other, int) else other)
        if result is NotImplemented:
            return NotImplemented
        labels = self.labels | taint_of(other)
        if isinstance(result, int) and not isinstance(result, bool):
            return TaintedInt(result, labels)
        return result

    op.__name__ = name
    return op


def _reflected(name):
    int_op = getattr(int, name)

    def op(self, other):
        result = int_op(int(self), int(other) if isinstance(other, int) else other)
        if result is NotImplemented:
            return NotImplemented
        labels = self.labels | taint_of(other)
        if isinstance(result, int) and not isinstance(result, bool):
            return TaintedInt(result, labels)
        return result

    op.__name__ = name
    return op


def _unary(name):
    int_op = getattr(int, name)

    def op(self):
        return TaintedInt(int_op(int(self)), self.labels)

    op.__name__ = name
    return op


for _name in ("__add__", "__sub__", "__mul__", "__floordiv__", "__mod__",
              "__and__", "__or__", "__xor__", "__lshift__", "__rshift__",
              "__pow__"):
    setattr(TaintedInt, _name, _binary(_name))

for _name in ("__radd__", "__rsub__", "__rmul__", "__rfloordiv__",
              "__rmod__", "__rand__", "__ror__", "__rxor__",
              "__rlshift__", "__rrshift__"):
    setattr(TaintedInt, _name, _reflected(_name))

for _name in ("__neg__", "__pos__", "__invert__", "__abs__"):
    setattr(TaintedInt, _name, _unary(_name))

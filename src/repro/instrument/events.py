"""Access events published by the hook layer to registered observers."""


class PmAccessEvent:
    """One instrumented PM access.

    Attributes:
        kind: "load", "store", "ntstore", "cas", "clwb", or "sfence".
        addr: Pool offset (None for sfence).
        size: Access size in bytes (0 for clwb/sfence).
        value: The loaded/stored value (int or bytes) when applicable.
        thread: The :class:`~repro.runtime.thread.SimThread`, or None when
            the access happens outside the scheduler (setup/recovery code).
        tid: Thread id (-1 outside the scheduler).
        instr_id: Call-site instruction ID. Events published by
            :class:`~repro.instrument.hooks.PmView` carry *interned ints*
            from the context's CallSiteTable (resolve with
            ``ctx.callsites.name(event.instr_id)``); hand-built events in
            tests may carry strings directly — detection-boundary code
            resolves both transparently.
        stack: Call-site stack (innermost first; interned ids from
            instrumented accesses).
        nonpersisted: StoreRecords of non-persisted writers overlapping a
            load's range (loads only).
        taint: Label set flowing into a store (content ∪ address flow).
        addr_taint: Label subset that arrived via the address operand.
        same_value: Store only: the written bytes equal what memory
            already held (an idempotent write-back, e.g. a flush helper).
    """

    __slots__ = ("kind", "addr", "size", "value", "thread", "tid",
                 "instr_id", "stack", "nonpersisted", "taint", "addr_taint",
                 "same_value")

    def __init__(self, kind, addr, size, value=None, thread=None,
                 instr_id=None, stack=(), nonpersisted=(), taint=frozenset(),
                 addr_taint=frozenset(), same_value=False):
        self.kind = kind
        self.addr = addr
        self.size = size
        self.value = value
        self.thread = thread
        self.tid = thread.tid if thread is not None else -1
        self.instr_id = instr_id
        self.stack = stack
        self.nonpersisted = nonpersisted
        self.taint = taint
        self.addr_taint = addr_taint
        self.same_value = same_value

    def __repr__(self):
        return "<PmAccessEvent %s addr=%s tid=%d instr=%s>" % (
            self.kind, hex(self.addr) if self.addr is not None else None,
            self.tid, self.instr_id)


class Observer:
    """Base observer; override any subset of the callbacks."""

    def on_load(self, event):
        """A PM load completed (event.value holds the loaded value)."""

    def on_store(self, event):
        """A PM store (or ntstore / successful CAS) completed."""

    def on_flush(self, event):
        """A CLWB was issued."""

    def on_fence(self, event):
        """An SFENCE was issued."""

    def on_annotated_store(self, annotation, event):
        """A store hit a region annotated via pm_sync_var_hint."""

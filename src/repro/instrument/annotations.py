"""Lightweight annotations for persistent synchronization variables (§5).

The original tool exposes ``pm_sync_var_hint(size, init_val)`` as a Clang
annotation on variable/field *definitions*. Here a target declares each
synchronization-variable *type* once (name, word size, expected post-
recovery value) and registers the PM addresses of its instances as it lays
out structures. The checker flags stores to registered addresses and the
post-failure validator compares the recovered value against ``init_val``.
"""


class SyncVarAnnotation:
    """One annotated synchronization-variable type.

    Attributes:
        name: Type name, e.g. ``"bucket_lock"`` — the dedup unit for
            PM Synchronization Inconsistencies ("same synchronization
            variable type", §6.2).
        size: Variable size in bytes.
        init_val: Expected value after a correct recovery.
    """

    __slots__ = ("name", "size", "init_val", "addrs")

    def __init__(self, name, size, init_val):
        self.name = name
        self.size = size
        self.init_val = init_val
        self.addrs = set()

    def __repr__(self):
        return "<SyncVarAnnotation %s size=%d init=%r instances=%d>" % (
            self.name, self.size, self.init_val, len(self.addrs))


class AnnotationRegistry:
    """All sync-var annotations of one target program."""

    def __init__(self):
        self._types = {}
        self._by_addr = {}

    def pm_sync_var_hint(self, name, size, init_val):
        """Declare a synchronization-variable type; idempotent by name."""
        annotation = self._types.get(name)
        if annotation is None:
            annotation = SyncVarAnnotation(name, size, init_val)
            self._types[name] = annotation
        return annotation

    def register_instance(self, name, addr):
        """Mark ``addr`` as an instance of the annotated type ``name``."""
        annotation = self._types[name]
        annotation.addrs.add(addr)
        self._by_addr[addr] = annotation

    def unregister_instance(self, addr):
        annotation = self._by_addr.pop(addr, None)
        if annotation is not None:
            annotation.addrs.discard(addr)

    def lookup(self, addr, size):
        """The annotation covering any address in ``[addr, addr+size)``."""
        for offset in range(addr, addr + max(size, 1)):
            annotation = self._by_addr.get(offset)
            if annotation is not None:
                return annotation
        return None

    def types(self):
        return list(self._types.values())

    def declared_names(self):
        """The declared sync-var type names, as a set.

        pmlint's PM03 rule consumes this when a live registry is
        available: lock-like PM stores whose identifiers match no
        declared name are reported as unregistered (post-failure
        validation cannot check them).
        """
        return set(self._types)

    @property
    def annotation_count(self):
        """Number of annotated types — the "Annotation" column of Table 3."""
        return len(self._types)

"""Command-line interface: ``python -m repro <command>``.

Mirrors the original artifact's scripts: list the targets, fuzz one (or
all) of them, and emit the detailed JSON reports plus the paper-style
summary tables.

Commands:
    targets                     list the registered targets (--check runs
                                the contract-conformance suite)
    fuzz <target>               fuzz one target and print its bugs
    fuzz-parallel <target>      fuzz one target with a worker pool (§5)
    validate <target>           fuzz, then post-failure validate separately
    replay <bundle.json>        re-execute a repro bundle, assert identity
    shrink <bundle.json>        ddmin-minimize a repro bundle
    tables                      fuzz everything and print Tables 2/3/5/6
    stats <file.jsonl>          summarize a --trace-out/--metrics-out file
    corpus <action> <dir>       inspect (stats) or coverage-minimize a
                                persisted seed corpus (--corpus-dir)
    lint [files...]             static PM-misuse analysis (pmlint); with
                                no files, lints the built-in target modules

Every subcommand accepts ``--target-module pkg.mod`` (repeatable; a
``path/to/file.py`` also works): the module is imported first and the
Target subclasses it defines register alongside the built-ins, so
third-party workloads fuzz, lint, validate, and replay through the same
commands (see ``docs/TARGET_SDK.md``).

``fuzz``, ``fuzz-parallel``, ``validate``, and ``tables`` accept
``--trace-out FILE`` (typed JSONL event stream) and ``--metrics-out
FILE`` (counter/gauge/histogram registry dump); ``stats`` reads either.
``lint`` exits nonzero when unsuppressed findings remain; see
``docs/LINT_RULES.md`` for the rules and the suppression format.

``--repro-dir DIR`` on the fuzzing commands captures one deterministic
repro bundle per kept record (see ``docs/REPRODUCERS.md``); ``replay``
exits nonzero on any divergence or identity mismatch, ``shrink`` writes
the minimized bundle next to the input as ``<name>.min.json``.
"""

import argparse
import sys

from .core import PMRaceConfig, fuzz_parallel, fuzz_target
from .core.results import (
    build_table2,
    build_table3,
    build_table5,
    build_table6,
    build_worker_table,
    render_table,
)
from .detect.postfailure import PostFailureValidator
from .detect.records import Verdict
from .detect.reporting import dump_run_result, load_whitelist
from .detect.validation_service import (
    ValidationQueue,
    validate_records_parallel,
)
from .detect.whitelist import Whitelist
from .obs import Metrics, Tracer, render_stats, summarize_path
from .targets import make_target, table1_rows, target_names
from .targets.registry import TargetModuleError, load_target_modules


def _add_plugin_option(parser):
    parser.add_argument("--target-module", action="append", metavar="SPEC",
                        dest="target_modules", default=[],
                        help="import a plugin module (dotted name or .py "
                             "path) and register the targets it defines; "
                             "repeatable")


def _add_fuzz_options(parser, parallel_flag=True, session_flag=False):
    parser.add_argument("--campaigns", type=int, default=80,
                        help="campaigns per seed (default 80)")
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=[7, 13, 42],
                        help="base seeds, one engine session each")
    parser.add_argument("--threads", type=int, default=4,
                        help="simulated worker threads (default 4)")
    parser.add_argument("--mode", choices=("pmrace", "delay", "random"),
                        default="pmrace", help="exploration scheme")
    parser.add_argument("--eadr", action="store_true",
                        help="simulate an eADR platform (§6.6)")
    parser.add_argument("--whitelist", metavar="FILE",
                        help="extra whitelist entries (one per line)")
    parser.add_argument("--static-hints", action="store_true",
                        dest="static_hints",
                        help="pre-seed the priority queue with pmlint's "
                             "static findings (see `repro lint`)")
    if parallel_flag:
        parser.add_argument("--parallel", type=int, metavar="N", default=0,
                            help="fuzz with N worker processes (§5)")
    parser.add_argument("--repro-dir", metavar="DIR", dest="repro_dir",
                        help="capture a deterministic repro bundle per "
                             "kept record and write them here")
    parser.add_argument("--corpus-dir", metavar="DIR", dest="corpus_dir",
                        help="persist the retained seed corpus here (one "
                             "JSON file per seed) and resume from it")
    parser.add_argument("--corpus-schedule", choices=("energy", "uniform"),
                        default="energy", dest="corpus_schedule",
                        help="seed-tier parent selection: AFL-style "
                             "energy weighting (default) or uniform")
    if session_flag:
        parser.add_argument("--session-dir", metavar="DIR",
                            dest="session_dir",
                            help="make the run durable: journal + "
                                 "checkpoint every completed work unit "
                                 "here so a killed run can continue "
                                 "(see docs/SESSIONS.md)")
        parser.add_argument("--resume", action="store_true",
                            help="continue the session in --session-dir: "
                                 "skip finished work units, keep retry "
                                 "budgets, re-validate pending records")
    parser.add_argument("--output", metavar="FILE",
                        help="write the full JSON report here")
    parser.add_argument("--trace-out", metavar="FILE", dest="trace_out",
                        help="write a typed JSONL event trace here")
    parser.add_argument("--metrics-out", metavar="FILE", dest="metrics_out",
                        help="write the metrics registry as JSONL here")


def _make_config(args):
    whitelist = load_whitelist(args.whitelist) if args.whitelist else None
    return PMRaceConfig(mode=args.mode, n_threads=args.threads,
                        max_campaigns=args.campaigns, max_seeds=20,
                        whitelist=whitelist, eadr=args.eadr,
                        static_hints=getattr(args, "static_hints", False),
                        capture_repro=bool(getattr(args, "repro_dir",
                                                   None)),
                        corpus_schedule=getattr(args, "corpus_schedule",
                                                "energy"),
                        corpus_dir=getattr(args, "corpus_dir", None),
                        target_modules=tuple(
                            getattr(args, "target_modules", ()) or ()))


def _make_obs(args):
    """(tracer, metrics) from the --trace-out/--metrics-out flags."""
    tracer = Tracer(args.trace_out) if args.trace_out else None
    metrics = Metrics() if args.metrics_out else None
    return tracer, metrics


def _close_obs(args, tracer, metrics):
    """Flush observability sinks and tell the user where they went."""
    if tracer is not None:
        tracer.close()
        print("trace written to %s" % args.trace_out, file=sys.stderr)
    if metrics is not None:
        metrics.dump(args.metrics_out)
        print("metrics written to %s" % args.metrics_out, file=sys.stderr)


def _open_session(args, target, kind, config, tracer=None, metrics=None):
    """(session, error_exit) from --session-dir/--resume; (None, None)
    when no session was requested."""
    session_dir = getattr(args, "session_dir", None)
    if not session_dir:
        if getattr(args, "resume", False):
            print("--resume requires --session-dir", file=sys.stderr)
            return None, 2
        return None, None
    from .core.session import Session, SessionError
    try:
        session = Session.open(session_dir, target, kind,
                               tuple(args.seeds), config,
                               resume=getattr(args, "resume", False),
                               tracer=tracer, metrics=metrics)
    except SessionError as exc:
        print("--session-dir: %s" % exc, file=sys.stderr)
        return None, 2
    if session.resumed:
        print("resuming session in %s (%d unit(s) already done)"
              % (session_dir, len(session.done_units())),
              file=sys.stderr)
    return session, None


def _session_exit(result, args):
    """Exit code for a session run: 128+signum when interrupted (the
    session is checkpointed and resumable), else None."""
    interrupted = getattr(result, "interrupted", None)
    if interrupted is None:
        return None
    print("\ninterrupted by signal %d — session checkpointed to %s; "
          "rerun with --resume to continue"
          % (interrupted, args.session_dir), file=sys.stderr)
    return 128 + interrupted


def _fuzz_one(name, args, tracer=None, metrics=None):
    config = _make_config(args)
    if getattr(args, "parallel", 0):
        return fuzz_parallel(name, config, seeds=tuple(args.seeds),
                             processes=args.parallel, tracer=tracer,
                             metrics=metrics)
    return fuzz_target(make_target(name), config, seeds=tuple(args.seeds),
                       tracer=tracer, metrics=metrics)


def cmd_targets(args):
    print(render_table(table1_rows(),
                       ["system", "version", "scope", "concurrency"],
                       title="Targets (Table 1 + registered plugins)"))
    if getattr(args, "check", False):
        from .targets.conformance import check_all
        print()
        failed = 0
        for report in check_all():
            print(report.summary())
            failed += 0 if report.ok else 1
        if failed:
            print("\n%d target(s) failed conformance" % failed,
                  file=sys.stderr)
            return 1
    return 0


def _save_repro(result, args):
    """Persist captured repro bundles when ``--repro-dir`` was given."""
    repro_dir = getattr(args, "repro_dir", None)
    if not repro_dir:
        return
    from .core.results import count_repro_bundles
    from .replay import save_bundles
    paths = save_bundles(result, repro_dir)
    print("%d repro bundle(s) (%d records captured) written to %s"
          % (len(paths), count_repro_bundles(result), repro_dir),
          file=sys.stderr)


def _print_findings(result, args):
    summary = result.summary()
    print("%(target)s: %(campaigns)d campaigns" % summary)
    print("  inter-thread candidates     : %(inter_candidates)d" % summary)
    print("  confirmed inconsistencies   : %d (inter %d / intra %d)"
          % (summary["inter"] + summary["intra"], summary["inter"],
             summary["intra"]))
    print("  sync inconsistencies        : %(sync)d "
          "(%(sync_validated_fp)d benign)" % summary)
    print("  unique bugs                 : %(bugs)d" % summary)
    for report in result.bug_reports:
        print()
        print(report.format())
    if args.output:
        path = dump_run_result(result, args.output)
        print("\nJSON report written to %s" % path)
    _save_repro(result, args)


def _check_target(name):
    if name not in target_names():
        print("unknown target %r; choose from: %s"
              % (name, ", ".join(target_names())), file=sys.stderr)
        return False
    return True


def cmd_fuzz(args):
    if not _check_target(args.target):
        return 2
    tracer, metrics = _make_obs(args)
    config = _make_config(args)
    kind = "parallel" if getattr(args, "parallel", 0) else "serial"
    session, error = _open_session(args, args.target, kind, config,
                                   tracer=tracer, metrics=metrics)
    if error is not None:
        return error
    if session is None:
        result = _fuzz_one(args.target, args, tracer=tracer,
                           metrics=metrics)
    elif kind == "parallel":
        result = fuzz_parallel(args.target, config,
                               seeds=tuple(args.seeds),
                               processes=args.parallel, tracer=tracer,
                               metrics=metrics, session=session)
    else:
        from .core.session import run_fuzz_session
        result, _signum = run_fuzz_session(args.target, config,
                                           tuple(args.seeds), session,
                                           tracer=tracer, metrics=metrics)
    _print_findings(result, args)
    _close_obs(args, tracer, metrics)
    exit_code = _session_exit(result, args) if session is not None \
        else None
    return exit_code if exit_code is not None else 0


def cmd_fuzz_parallel(args):
    if not _check_target(args.target):
        return 2

    def progress(stats, merged):
        note = "" if stats.status == "ok" else \
            " (%s, retry budget %d)" % (stats.status,
                                        args.max_retries - stats.attempt)
        print("worker %d seed %d attempt %d: %s — %d campaigns, "
              "merged total %d%s"
              % (stats.worker_id, stats.seed, stats.attempt, stats.status,
                 stats.campaigns, merged.campaigns, note), file=sys.stderr)

    tracer, metrics = _make_obs(args)
    config = _make_config(args)
    session, error = _open_session(args, args.target, "parallel", config,
                                   tracer=tracer, metrics=metrics)
    if error is not None:
        return error
    result = fuzz_parallel(args.target, config,
                           seeds=tuple(args.seeds),
                           processes=args.processes or None,
                           worker_timeout=args.worker_timeout,
                           max_retries=args.max_retries,
                           progress=progress, tracer=tracer,
                           metrics=metrics, session=session)
    print(render_table(build_worker_table(result),
                       title="Workers (§5 concurrent fuzzing)"))
    print()
    _print_findings(result, args)
    _close_obs(args, tracer, metrics)
    if session is not None:
        exit_code = _session_exit(result, args)
        if exit_code is not None:
            return exit_code
    failed = [s for s in result.worker_stats if s.status != "ok"]
    exhausted = [s for s in failed if s.attempt >= args.max_retries]
    if exhausted:
        print("\n%d worker attempt(s) failed with no retry budget left"
              % len(exhausted), file=sys.stderr)
        return 1
    return 0


def cmd_validate(args):
    """Fuzz with validation deferred, then validate in one visible pass."""
    if not _check_target(args.target):
        return 2
    tracer, metrics = _make_obs(args)
    config = _make_config(args)
    config.validate = False
    result = fuzz_target(make_target(args.target), config,
                         seeds=tuple(args.seeds), tracer=tracer,
                         metrics=metrics)
    whitelist = config.whitelist or Whitelist()
    records = list(result.inconsistencies) + list(result.sync_inconsistencies)
    if args.jobs > 1:
        stats = validate_records_parallel(
            args.target, records, whitelist=whitelist, jobs=args.jobs,
            metrics=metrics, target_modules=config.target_modules)
    else:
        validator = PostFailureValidator(
            lambda: make_target(args.target), whitelist,
            tracer=tracer, metrics=metrics)
        queue = ValidationQueue(validator, tracer=tracer, metrics=metrics)
        for record in records:
            queue.enqueue(record)
        queue.drain()
        stats = queue.stats()
    result._regroup()
    by_verdict = {}
    for record in records:
        by_verdict[record.verdict] = by_verdict.get(record.verdict, 0) + 1
    print("post-failure validation: %d records -> %d bugs, "
          "%d validated FPs, %d whitelisted FPs, %d pending"
          % (len(records), by_verdict.get(Verdict.BUG, 0),
             by_verdict.get(Verdict.VALIDATED_FP, 0),
             by_verdict.get(Verdict.WHITELISTED_FP, 0),
             by_verdict.get(Verdict.PENDING, 0)))
    print("replay cache: %d unique images, %d hits, %d misses "
          "(%d records awaiting an image)"
          % (stats["unique_images"], stats["cache_hits"],
             stats["cache_misses"], stats["awaiting_image"]))
    print()
    _print_findings(result, args)
    _close_obs(args, tracer, metrics)
    return 0


def _load_bundle(path):
    from .replay import BundleError, ReproBundle
    try:
        return ReproBundle.load(path)
    except OSError as exc:
        print("cannot read bundle %s: %s" % (path, exc), file=sys.stderr)
    except BundleError as exc:
        print("invalid bundle %s: %s" % (path, exc), file=sys.stderr)
    return None


def cmd_replay(args):
    """Re-execute a repro bundle; nonzero exit on any mismatch."""
    from .detect.validation_service import make_validation_queue
    from .replay import replay_bundle
    bundle = _load_bundle(args.bundle)
    if bundle is None:
        return 2
    tracer, metrics = _make_obs(args)
    validation = None
    if args.validate:
        validation = make_validation_queue(bundle.target, tracer=tracer,
                                           metrics=metrics)
    outcome = replay_bundle(bundle, validation=validation, tracer=tracer,
                            metrics=metrics)
    for line in outcome.describe():
        print(line)
    _close_obs(args, tracer, metrics)
    return 0 if outcome.ok else 1


def cmd_shrink(args):
    """ddmin-minimize a repro bundle; writes ``<name>.min.json``."""
    from .replay import shrink_bundle
    bundle = _load_bundle(args.bundle)
    if bundle is None:
        return 2
    tracer, metrics = _make_obs(args)
    result = shrink_bundle(bundle, budget=args.budget, tracer=tracer,
                           metrics=metrics)
    if not result.reproduced:
        print("bundle does not reproduce its record; nothing to shrink",
              file=sys.stderr)
        _close_obs(args, tracer, metrics)
        return 1
    out = args.out
    if out is None:
        base = args.bundle[:-5] if args.bundle.endswith(".json") \
            else args.bundle
        out = base + ".min.json"
    result.bundle.save(out)
    summary = result.summary()
    print("ops      : %s (%.0f%% removed)"
          % (summary["ops"], 100 * result.op_reduction))
    print("schedule : %s" % summary["schedule"])
    print("tests    : %d (budget %d)" % (result.tests, args.budget))
    print("verified : %s" % ("yes" if result.verified else "NO"))
    print("minimized bundle written to %s" % out)
    _close_obs(args, tracer, metrics)
    return 0 if result.verified else 1


def cmd_corpus(args):
    """Inspect or minimize an on-disk seed corpus (``--corpus-dir``)."""
    import json as _json
    import os

    from .core.corpus import Corpus, minimize_by_coverage

    if not os.path.isdir(args.dir):
        print("no corpus directory at %s" % args.dir, file=sys.stderr)
        return 2
    corpus = Corpus(schedule="uniform", persist_dir=args.dir)
    loaded = corpus.load()
    if args.action == "stats":
        rows = corpus.stats_rows()
        if args.json:
            print(_json.dumps({"dir": args.dir, "seeds": rows,
                               "load_errors": corpus.load_errors},
                              indent=1, sort_keys=True))
            return 0
        for row in rows:
            row["digest"] = row["digest"][:12]
        print(render_table(rows, title="Corpus: %d seed(s) in %s"
                           % (loaded, args.dir)))
        if corpus.load_errors:
            print("%d invalid seed file(s) skipped" % corpus.load_errors,
                  file=sys.stderr)
        return 0
    # minimize
    if not _check_target(args.target):
        return 2
    if not len(corpus):
        print("corpus is empty; nothing to minimize", file=sys.stderr)
        return 1
    kept, dropped = minimize_by_coverage(corpus, make_target(args.target),
                                         base_seed=args.base_seed)
    print("coverage-minimal corpus: keep %d of %d seed(s)"
          % (len(kept), len(corpus)))
    for entry, covered in kept:
        print("  keep %s (%d ops, covers %d)"
              % (entry.digest[:12], entry.seed.op_count, covered))
    for entry, covered in dropped:
        print("  drop %s (%d ops, covers %d — redundant)"
              % (entry.digest[:12], entry.seed.op_count, covered))
    if args.apply:
        for entry, _covered in dropped:
            corpus.discard(entry)
        print("%d redundant seed file(s) removed from %s"
              % (len(dropped), args.dir))
    elif dropped:
        print("(dry run — pass --apply to delete the redundant files)")
    return 0


def cmd_stats(args):
    try:
        summary = summarize_path(args.file)
    except (OSError, ValueError) as exc:
        print("cannot summarize %s: %s" % (args.file, exc), file=sys.stderr)
        return 2
    print(render_stats(summary))
    return 0


def cmd_lint(args):
    """Static PM-misuse analysis; exit 1 when findings survive."""
    from .analysis import (lint_builtin_targets, lint_file,
                           load_builtin_whitelist)

    extra = []
    if args.whitelist:
        extra = [entry for entry in load_whitelist(
            args.whitelist, include_defaults=False).entries]
    if args.no_builtin_whitelist:
        whitelist = Whitelist(extra)
    else:
        whitelist = load_builtin_whitelist(extra)
    if args.files:
        report = None
        for path in args.files:
            one = lint_file(path, whitelist=whitelist)
            if report is None:
                report = one
            else:
                report.extend(one)
    else:
        report = lint_builtin_targets(whitelist=whitelist)
    if args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    return 1 if report.findings else 0


def cmd_tables(args):
    tracer, metrics = _make_obs(args)
    results = {}
    for name in target_names():
        print("fuzzing %s..." % name, file=sys.stderr)
        results[name] = _fuzz_one(name, args, tracer=tracer,
                                  metrics=metrics)
        _save_repro(results[name], args)
    _close_obs(args, tracer, metrics)
    print(render_table(build_table2(results),
                       ["#", "system", "type", "new", "description",
                        "consequence", "found"],
                       title="Table 2: unique bugs"))
    print()
    print(render_table(build_table3(results), title="Table 3: detection "
                       "and false-positive filtering"))
    print()
    print(render_table(build_table5(results),
                       title='Table 5: unique bugs ("new|total")'))
    print()
    print(render_table(build_table6(results),
                       title="Table 6: inconsistencies and FPs"))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PMRace reproduction: fuzz concurrent PM programs for "
                    "crash-consistency concurrency bugs")
    sub = parser.add_subparsers(dest="command", required=True)

    targets = sub.add_parser("targets", help="list the systems under test")
    targets.add_argument("--check", action="store_true",
                         help="run the contract-conformance suite over "
                              "every registered target (nonzero exit on "
                              "failure)")

    fuzz = sub.add_parser("fuzz", help="fuzz one target")
    fuzz.add_argument("target", help="registered target name, e.g. P-CLHT")
    _add_fuzz_options(fuzz, session_flag=True)

    par = sub.add_parser(
        "fuzz-parallel",
        help="fuzz one target with a fault-tolerant worker pool (§5)")
    par.add_argument("target", help="registered target name, e.g. P-CLHT")
    _add_fuzz_options(par, parallel_flag=False, session_flag=True)
    par.add_argument("--processes", type=int, metavar="N", default=0,
                     help="worker pool size (default min(seeds, cpus); "
                          "1 = in-process)")
    par.add_argument("--worker-timeout", type=float, metavar="SECONDS",
                     default=None,
                     help="write off a worker as hung after this long")
    par.add_argument("--max-retries", type=int, default=1,
                     help="retries per failed worker, fresh seed each "
                          "(default 1)")

    validate = sub.add_parser(
        "validate",
        help="fuzz with validation deferred, then run post-failure "
             "validation as its own observable pass")
    validate.add_argument("target", help="registered target name")
    _add_fuzz_options(validate, parallel_flag=False)
    validate.add_argument("--jobs", type=int, metavar="N", default=1,
                          help="validate with N worker processes, "
                               "partitioned by crash-image digest "
                               "(default 1 = in-process)")

    replay = sub.add_parser(
        "replay",
        help="re-execute a repro bundle and assert the same first "
             "inconsistency (nonzero exit on divergence)")
    replay.add_argument("bundle", help="path to a repro bundle JSON file")
    replay.add_argument("--validate", action="store_true",
                        help="also post-failure validate the re-detected "
                             "record and report its verdict")
    replay.add_argument("--trace-out", metavar="FILE", dest="trace_out",
                        help="write a typed JSONL event trace here")
    replay.add_argument("--metrics-out", metavar="FILE",
                        dest="metrics_out",
                        help="write the metrics registry as JSONL here")

    shrink = sub.add_parser(
        "shrink",
        help="delta-debug a repro bundle down to a minimal reproducer")
    shrink.add_argument("bundle", help="path to a repro bundle JSON file")
    shrink.add_argument("--budget", type=int, metavar="N", default=200,
                        help="max candidate replays (default 200)")
    shrink.add_argument("--out", metavar="FILE",
                        help="minimized bundle path (default "
                             "<bundle>.min.json)")
    shrink.add_argument("--trace-out", metavar="FILE", dest="trace_out",
                        help="write a typed JSONL event trace here")
    shrink.add_argument("--metrics-out", metavar="FILE",
                        dest="metrics_out",
                        help="write the metrics registry as JSONL here")

    tables = sub.add_parser("tables", help="fuzz all targets, print tables")
    _add_fuzz_options(tables)

    stats = sub.add_parser(
        "stats", help="summarize a --trace-out/--metrics-out JSONL file")
    stats.add_argument("file", help="trace or metrics JSONL path")

    corpus = sub.add_parser(
        "corpus",
        help="inspect or minimize an on-disk seed corpus (--corpus-dir)")
    corpus.add_argument("action", choices=("stats", "minimize"),
                        help="stats: per-seed scheduling statistics; "
                             "minimize: greedy coverage-preserving "
                             "seed-set reduction")
    corpus.add_argument("dir", help="corpus directory (--corpus-dir)")
    corpus.add_argument("--json", action="store_true",
                        help="stats only: emit JSON instead of a table")
    corpus.add_argument("--target", metavar="NAME",
                        help="minimize only: Table 1 system the corpus "
                             "belongs to (coverage is measured by "
                             "replaying each seed once)")
    corpus.add_argument("--base-seed", type=int, default=0,
                        dest="base_seed",
                        help="minimize only: scheduler seed for the "
                             "coverage probes (default 0)")
    corpus.add_argument("--apply", action="store_true",
                        help="minimize only: delete the redundant seed "
                             "files instead of dry-running")

    lint = sub.add_parser(
        "lint",
        help="static PM-misuse analysis (pmlint) over target source")
    lint.add_argument("files", nargs="*",
                      help="python files to lint (default: every "
                           "registered target module)")
    lint.add_argument("--json", action="store_true",
                      help="emit the report as JSON instead of text")
    lint.add_argument("--whitelist", metavar="FILE",
                      help="extra suppression entries (whitelist format)")
    lint.add_argument("--no-builtin-whitelist", action="store_true",
                      dest="no_builtin_whitelist",
                      help="do not apply analysis/builtin.whitelist "
                           "(shows the intentional Table 2 bugs)")

    # The plugin boundary: every subcommand resolves targets by name
    # through the registry, so every subcommand can extend it first.
    for subparser in sub.choices.values():
        _add_plugin_option(subparser)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        loaded = load_target_modules(getattr(args, "target_modules", ()))
    except TargetModuleError as exc:
        print("--target-module: %s" % exc, file=sys.stderr)
        return 2
    if loaded:
        print("registered plugin target(s): %s" % ", ".join(loaded),
              file=sys.stderr)
    handler = {"targets": cmd_targets, "fuzz": cmd_fuzz,
               "fuzz-parallel": cmd_fuzz_parallel,
               "validate": cmd_validate,
               "replay": cmd_replay, "shrink": cmd_shrink,
               "tables": cmd_tables, "stats": cmd_stats,
               "corpus": cmd_corpus, "lint": cmd_lint}[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())

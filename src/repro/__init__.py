"""PMRace reproduction: detecting concurrency bugs in PM programs.

A pure-Python reproduction of *"Efficiently Detecting Concurrency Bugs in
Persistent Memory Programs"* (ASPLOS 2022): a simulated persistent-memory
platform, a deterministic interleaving scheduler, PM-aware coverage-guided
fuzzing with sync-point scheduling, taint-based durable-side-effect
confirmation, post-failure validation, and re-implementations of the five
concurrent PM systems the paper tested.

Quickstart::

    from repro import PMRace, PMRaceConfig, make_target

    result = PMRace(make_target("P-CLHT"), PMRaceConfig(max_campaigns=60)).run()
    for report in result.bug_reports:
        print(report.format())
"""

from .core import (
    AflByteMutator,
    OperationMutator,
    PMRace,
    PMRaceConfig,
    ParallelFuzzService,
    RunResult,
    Seed,
    WorkerStats,
    fuzz_parallel,
    fuzz_target,
    run_campaign,
)
from .detect import (
    BugReport,
    InconsistencyChecker,
    PostFailureValidator,
    RedundantFlushChecker,
    Verdict,
    Whitelist,
    dump_run_result,
    load_whitelist,
    save_whitelist,
    scan_missing_flushes,
)
from .instrument import AnnotationRegistry, InstrumentationContext, PmView
from .obs import Metrics, NullTracer, RunProfiler, Tracer
from .pmem import PersistentAllocator, PersistentMemory, PmemPool
from .runtime import (
    DelayInjectionPolicy,
    RoundRobinPolicy,
    Scheduler,
    SeededRandomPolicy,
    SimLock,
)
from .targets import (
    OperationSpace,
    Target,
    TargetState,
    make_target,
    table1_rows,
    target_names,
)

__version__ = "1.0.0"

__all__ = [
    "PMRace",
    "PMRaceConfig",
    "RunResult",
    "Seed",
    "OperationMutator",
    "AflByteMutator",
    "run_campaign",
    "fuzz_target",
    "fuzz_parallel",
    "ParallelFuzzService",
    "WorkerStats",
    "InconsistencyChecker",
    "PostFailureValidator",
    "Whitelist",
    "Verdict",
    "RedundantFlushChecker",
    "scan_missing_flushes",
    "dump_run_result",
    "save_whitelist",
    "load_whitelist",
    "BugReport",
    "PmView",
    "InstrumentationContext",
    "AnnotationRegistry",
    "Tracer",
    "NullTracer",
    "Metrics",
    "RunProfiler",
    "PmemPool",
    "PersistentMemory",
    "PersistentAllocator",
    "Scheduler",
    "SeededRandomPolicy",
    "RoundRobinPolicy",
    "DelayInjectionPolicy",
    "SimLock",
    "Target",
    "TargetState",
    "OperationSpace",
    "make_target",
    "target_names",
    "table1_rows",
    "__version__",
]

"""Repro bundles: the self-contained, versioned reproducer format.

A bundle is everything one campaign needs to be re-executed
deterministically, as a JSON document:

* the **inputs** — target name, the config fields that shape execution,
  the per-thread operation lists, the sync-point entry and carried-over
  ``cond_wait`` skips (call sites as ``module:function:line`` strings so
  they survive re-interning in a fresh process);
* the **schedule** — the decision vector recorded by
  :class:`~repro.runtime.policies.RecordingPolicy` (one tid per
  scheduler pick) plus the journaled draws of the privileged-election
  and cache-eviction RNGs;
* the **identity** — the dedup key of the record the bundle reproduces
  and the dedup key of the campaign's first inconsistency, which replay
  asserts against;
* a snapshot of the interned call-site table, for diagnostics and for
  resolving the schedule against the original run.

Bundles are forward-versioned: :data:`BUNDLE_VERSION` is bumped on any
incompatible field change and :func:`validate_bundle_data` rejects
versions it does not understand, so a stale golden bundle fails loudly
instead of replaying garbage.
"""

import json
import os

BUNDLE_VERSION = 1

#: Fields every version-1 bundle must carry.
_REQUIRED = (
    "version", "target", "kind", "dedup_key", "config", "base_seed",
    "campaign_index", "ops", "entry", "skips", "schedule", "priv_draws",
    "evict_draws",
)

#: Config fields serialized into (and reconstructed from) a bundle.
CONFIG_FIELDS = (
    "mode", "n_threads", "writer_waiting", "taint_enabled",
    "snapshot_images", "capture_stacks", "max_steps", "spin_hang_limit",
    "use_checkpoints", "eadr", "evict_fraction",
)


class BundleError(ValueError):
    """A bundle failed structural validation (wrong version, missing
    fields, malformed schedule)."""


def config_snapshot(config):
    """The executable subset of a PMRaceConfig as a JSON-safe dict."""
    return {field: getattr(config, field) for field in CONFIG_FIELDS}


def validate_bundle_data(data):
    """Structural validation; returns ``data`` or raises BundleError."""
    if not isinstance(data, dict):
        raise BundleError("bundle must be a JSON object, got %s"
                          % type(data).__name__)
    missing = [field for field in _REQUIRED if field not in data]
    if missing:
        raise BundleError("bundle missing fields: %s" % ", ".join(missing))
    if data["version"] != BUNDLE_VERSION:
        raise BundleError("unsupported bundle version %r (this build "
                          "understands %d)" % (data["version"],
                                               BUNDLE_VERSION))
    if not all(isinstance(tid, int) for tid in data["schedule"]):
        raise BundleError("schedule must be a list of thread ids")
    if not isinstance(data["ops"], list) or not all(
            isinstance(ops, list) for ops in data["ops"]):
        raise BundleError("ops must be a list of per-thread op lists")
    return data


class ReproBundle:
    """One reproducer: a validated bundle dict with typed accessors.

    Bundles are immutable by convention — shrinking produces new
    bundles — and picklable (plain data), so they ride along on records
    through the parallel service's result pipeline.
    """

    def __init__(self, data):
        self.data = validate_bundle_data(data)

    # ------------------------------------------------------------------
    # identity

    @property
    def version(self):
        return self.data["version"]

    @property
    def target(self):
        return self.data["target"]

    @property
    def kind(self):
        return self.data["kind"]

    @property
    def dedup_key(self):
        """The reproduced record's dedup key, as the tuple records use."""
        return tuple(self.data["dedup_key"])

    @property
    def first_key(self):
        """Dedup key of the campaign's first inconsistency (or None)."""
        key = self.data.get("first_key")
        return tuple(key) if key is not None else None

    @property
    def verdict(self):
        """The record's verdict at bundle-save time ("pending" when the
        bundle was captured before validation ran)."""
        return self.data.get("verdict", "pending")

    # ------------------------------------------------------------------
    # execution inputs

    @property
    def config(self):
        return self.data["config"]

    @property
    def base_seed(self):
        return self.data["base_seed"]

    @property
    def campaign_index(self):
        return self.data["campaign_index"]

    @property
    def ops(self):
        return self.data["ops"]

    @property
    def op_count(self):
        return sum(len(ops) for ops in self.data["ops"])

    @property
    def entry(self):
        return self.data["entry"]

    @property
    def skips(self):
        return self.data["skips"]

    @property
    def schedule(self):
        return self.data["schedule"]

    @property
    def priv_draws(self):
        return self.data["priv_draws"]

    @property
    def evict_draws(self):
        return self.data["evict_draws"]

    @property
    def callsites(self):
        return self.data.get("callsites", [])

    # ------------------------------------------------------------------
    # derivation and serialization

    def with_updates(self, **fields):
        """A new bundle with ``fields`` replaced (shrink output)."""
        data = dict(self.data)
        data.update(fields)
        return ReproBundle(data)

    def to_json(self, indent=None):
        return json.dumps(self.data, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            # Distinguish a *truncated* document (killed mid-write —
            # the parser ran off the end of the input) from garbage.
            if not text.strip() or exc.pos >= len(text.rstrip()):
                raise BundleError(
                    "truncated bundle: the file ends mid-document "
                    "(its writer was probably killed mid-write); "
                    "re-capture the bundle")
            raise BundleError("bundle is not valid JSON: %s" % exc)
        return cls(data)

    def save(self, path):
        """Atomically write the bundle: tmp + fsync + rename-into-place,
        so a kill mid-save can never leave a torn bundle at ``path``."""
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as handle:
            handle.write(self.to_json(indent=2))
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())

    def __repr__(self):
        return "<ReproBundle %s %s ops=%d schedule=%d>" % (
            self.target, self.kind, self.op_count, len(self.schedule))

"""Delta-debugging minimization of repro bundles (``repro shrink``).

Classic ddmin (Zeller's delta debugging) over two dimensions, in order:

1. the **input op-sequence** — the bundle's per-thread operation lists
   are flattened to ``(tid, op)`` pairs and chunks are removed while the
   bundled record still reproduces;
2. the **schedule decision vector** — decisions are removed the same
   way; the :class:`~repro.runtime.policies.ReplayPolicy` fallback
   absorbs the gaps, and reproduction is re-tested after each cut.

Every candidate is re-executed with :func:`~repro.replay.replayer.
replay_campaign` and, when the original bundle carried a ``bug``
verdict, re-validated through the *cached* validation service — the
crash images of sibling candidates are usually dedup-equal, so the
digest cache makes the verdict check nearly free after the first
replay.

The minimized bundle is a **fresh capture** of the last successful
candidate: its actual decision sequence and served RNG draws are
journaled during the candidate run, so the output replays *strictly*
(no fallback, no divergence) even though the search itself ran loose. A
final strict replay verifies exactly that before the result is
returned.
"""

from ..detect.records import Verdict
from ..obs.tracer import NULL_TRACER
from .replayer import replay_bundle, replay_campaign

#: Default replay budget for one ``repro shrink`` invocation.
DEFAULT_BUDGET = 200


def _flatten(ops):
    """Per-thread op lists → ordered ``(tid, op)`` pairs."""
    flat = []
    for tid, thread_ops in enumerate(ops):
        for op in thread_ops:
            flat.append((tid, op))
    return flat


def _rebuild(flat, n_threads):
    """Ordered ``(tid, op)`` pairs → per-thread op lists."""
    threads = [[] for _ in range(n_threads)]
    for tid, op in flat:
        threads[tid].append(op)
    return threads


class ShrinkResult:
    """Outcome of one :func:`shrink_bundle` invocation.

    Attributes:
        bundle: The minimized :class:`~repro.replay.bundle.ReproBundle`
            (None when the input bundle did not reproduce at all).
        reproduced: The input bundle's baseline replay reproduced.
        verified: The minimized bundle strictly replayed (no fallback,
            no divergence) and reproduced the dedup key.
        original_ops / min_ops: Operation counts before/after.
        original_schedule / min_schedule: Decision counts before/after.
        tests: Candidate replays executed (the budget consumed).
        steps: Per-test journal: phase, candidate size, reproduced.
    """

    def __init__(self, original_ops, original_schedule):
        self.bundle = None
        self.reproduced = False
        self.verified = False
        self.original_ops = original_ops
        self.min_ops = original_ops
        self.original_schedule = original_schedule
        self.min_schedule = original_schedule
        self.tests = 0
        self.steps = []

    @property
    def op_reduction(self):
        """Fraction of operations removed (0.0 when nothing shrank)."""
        if self.original_ops <= 0:
            return 0.0
        return 1.0 - (self.min_ops / float(self.original_ops))

    def summary(self):
        return {
            "reproduced": self.reproduced,
            "verified": self.verified,
            "ops": "%d -> %d" % (self.original_ops, self.min_ops),
            "schedule": "%d -> %d" % (self.original_schedule,
                                      self.min_schedule),
            "op_reduction": round(self.op_reduction, 3),
            "tests": self.tests,
        }


class _Shrinker:
    """One shrink session: shared budget, validation cache, best state."""

    def __init__(self, bundle, budget, validation, require_bug,
                 tracer, metrics):
        self.bundle = bundle
        self.budget = budget
        self.validation = validation
        self.require_bug = require_bug
        self.tracer = tracer
        self.metrics = metrics
        self.n_threads = len(bundle.ops)
        self.result = ShrinkResult(bundle.op_count, len(bundle.schedule))
        # Best reproducing candidate: (flat ops, schedule, ReplayRun).
        self.best = None
        self.exhausted = False

    # ------------------------------------------------------------------
    # the predicate

    def test(self, flat, schedule, phase):
        """Replay one candidate; True when the record still reproduces."""
        if self.result.tests >= self.budget:
            self.exhausted = True
            return False
        self.result.tests += 1
        if self.metrics is not None:
            self.metrics.counter("shrink.steps").inc()
        run = replay_campaign(self.bundle, ops=_rebuild(flat,
                                                        self.n_threads),
                              schedule=schedule)
        ok = run.error is None \
            and self.bundle.dedup_key in run.records
        if ok and self.require_bug:
            record = run.records[self.bundle.dedup_key]
            self.validation.enqueue(record)
            self.validation.drain()
            ok = record.verdict is Verdict.BUG
        if ok:
            self.best = (list(flat), list(schedule), run)
        self.result.steps.append({"phase": phase, "ops": len(flat),
                                  "schedule": len(schedule),
                                  "reproduced": ok})
        if self.tracer.enabled:
            self.tracer.emit("shrink_step", phase=phase, ops=len(flat),
                             schedule=len(schedule), reproduced=ok,
                             tests=self.result.tests)
        return ok

    # ------------------------------------------------------------------
    # ddmin

    def ddmin(self, items, test):
        """Classic ddmin over ``items``; returns the reduced list."""
        n = 2
        while len(items) >= 2 and not self.exhausted:
            chunk = -(-len(items) // n)  # ceil division
            reduced = False
            for index in range(n):
                if self.exhausted:
                    break
                complement = items[:index * chunk] \
                    + items[(index + 1) * chunk:]
                if not complement or len(complement) == len(items):
                    continue
                if test(complement):
                    items = complement
                    n = max(n - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if n >= len(items):
                    break
                n = min(n * 2, len(items))
        return items


def shrink_bundle(bundle, budget=DEFAULT_BUDGET, validation=None,
                  tracer=None, metrics=None):
    """Minimize ``bundle`` with delta debugging; the ``repro shrink``
    entry point.

    Args:
        bundle: The :class:`~repro.replay.bundle.ReproBundle` to shrink.
        budget: Maximum candidate replays across both phases.
        validation: Optional :class:`~repro.detect.validation_service.
            ValidationQueue` reused (cache and all) across candidates;
            built on demand when the bundle's verdict is ``bug`` and
            none is supplied.
        tracer: Optional tracer (``shrink_step`` / ``shrink_done``).
        metrics: Optional metrics registry (``shrink.steps``,
            ``shrink.reduced_ops``, ``shrink.reduced_schedule``).

    Returns:
        A :class:`ShrinkResult`; ``result.bundle`` replays strictly.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    require_bug = bundle.verdict == "bug"
    if require_bug and validation is None:
        from ..detect.validation_service import make_validation_queue
        validation = make_validation_queue(bundle.target, metrics=metrics)
    shrinker = _Shrinker(bundle, budget, validation, require_bug,
                         tracer, metrics)
    result = shrinker.result

    # Baseline: the bundle must reproduce before any cutting starts.
    flat = _flatten(bundle.ops)
    schedule = list(bundle.schedule)
    if not shrinker.test(flat, schedule, "baseline"):
        if tracer.enabled:
            tracer.emit("shrink_done", reproduced=False,
                        tests=result.tests)
        return result
    result.reproduced = True

    # Phase 1: ddmin the op sequence under the recorded schedule.
    flat = shrinker.ddmin(
        flat, lambda candidate: shrinker.test(candidate, schedule, "ops"))

    # Phase 2: ddmin the schedule decision vector. Start from the
    # decisions the best op-phase candidate *actually* consumed — the
    # recorded vector often over-covers a shorter run.
    schedule = list(shrinker.best[2].decisions)
    schedule = shrinker.ddmin(
        schedule, lambda candidate: shrinker.test(flat, candidate,
                                                  "schedule"))

    # Re-capture the winner: its journaled decisions and draws replay
    # strictly, so the minimized bundle is self-verifying.
    best_flat, _, best_run = shrinker.best
    minimized = bundle.with_updates(
        ops=_rebuild(best_flat, shrinker.n_threads),
        schedule=list(best_run.decisions),
        priv_draws=list(best_run.priv_draws),
        evict_draws=list(best_run.evict_draws),
        first_key=list(best_run.first_key)
        if best_run.first_key is not None else None,
        callsites=best_run.callsites.snapshot(),
        shrink={"original_ops": result.original_ops,
                "original_schedule": result.original_schedule,
                "tests": result.tests})
    result.bundle = minimized
    result.min_ops = minimized.op_count
    result.min_schedule = len(minimized.schedule)
    verify = replay_bundle(minimized, metrics=metrics)
    result.verified = verify.reproduced and verify.divergence is None
    if metrics is not None:
        metrics.counter("shrink.runs").inc()
        metrics.counter("shrink.reduced_ops").inc(
            result.original_ops - result.min_ops)
        metrics.counter("shrink.reduced_schedule").inc(
            max(0, result.original_schedule - result.min_schedule))
    if tracer.enabled:
        tracer.emit("shrink_done", reproduced=True,
                    verified=result.verified, tests=result.tests,
                    **{"ops": "%d->%d" % (result.original_ops,
                                          result.min_ops),
                       "schedule": "%d->%d" % (result.original_schedule,
                                               result.min_schedule)})
    return result

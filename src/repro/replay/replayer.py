"""Replay side: re-execute a bundle's campaign and check its identity.

:func:`replay_campaign` reconstructs everything
:func:`~repro.core.campaign.run_campaign` needs from a
:class:`~repro.replay.bundle.ReproBundle` — a fresh registry target and
state, a fresh call-site table with the bundle's sync-point sites and
skips re-interned, a :class:`~repro.runtime.policies.ReplayPolicy` over
the recorded decision vector, and :class:`~repro.replay.recorder.
ReplayRandom` streams for the privileged-election and eviction draws —
and runs one campaign through a :class:`~repro.replay.scheduler.
ReplayScheduler`. The actual decisions and draws are re-journaled, so a
replay (or a shrink candidate) that reproduces can be saved as a new,
exactly-replayable bundle.

:func:`replay_bundle` wraps that into the ``repro replay`` verdict:
did the same record (by dedup key) appear, is the campaign's *first*
inconsistency identical, where did the schedule first diverge, and —
when validation is requested — what verdict does the re-detected record
earn through the cached validation service.
"""

import copy

from ..core.campaign import run_campaign
from ..core.checkpoints import make_state_provider
from ..core.priority import SharedAccessEntry
from ..core.seeding import policy_seed
from ..instrument.callsite import CallSiteTable
from ..obs.tracer import NULL_TRACER
from ..runtime.policies import (
    RecordingPolicy,
    ReplayPolicy,
    SeededRandomPolicy,
)
from ..targets.registry import make_target
from .bundle import ReproBundle
from .recorder import ReplayRandom
from .scheduler import ReplayScheduler


class ReplayRun:
    """Raw outcome of re-executing one bundle campaign.

    Attributes:
        campaign: The :class:`~repro.core.campaign.CampaignResult`, or
            None when the run errored before completing.
        status: Scheduler outcome status ("ok", "hang", "budget") or
            "error" when a simulated thread raised.
        keys: Dedup keys of every detected record, detection order
            (inter/intra first, then sync).
        first_key: Dedup key of the first detected inconsistency.
        records: dedup key → record for re-validation.
        divergence: First schedule mismatch diagnostic, or None.
        decisions: The schedule actually driven (re-capture input).
        priv_draws / evict_draws: The RNG draws actually served.
        error: The exception a simulated thread raised, if any.
    """

    def __init__(self):
        self.campaign = None
        self.status = "error"
        self.keys = []
        self.first_key = None
        self.records = {}
        self.divergence = None
        self.decisions = []
        self.priv_draws = []
        self.evict_draws = []
        self.callsites = None
        self.error = None

    @property
    def faithful(self):
        """True when the schedule replayed without any divergence."""
        return self.divergence is None and self.error is None


def _reconstruct_entry(bundle, callsites):
    data = bundle.entry
    if data is None:
        return None
    return SharedAccessEntry(
        data["addr"],
        {callsites.intern_name(site) for site in data["loads"]},
        {callsites.intern_name(site) for site in data["stores"]},
        data["frequency"])


def replay_campaign(bundle, ops=None, schedule=None, metrics=None):
    """Run one campaign reconstructed from ``bundle``.

    Args:
        bundle: The :class:`ReproBundle` to re-execute.
        ops: Override per-thread op lists (shrink candidates); defaults
            to the bundle's.
        schedule: Override decision vector (shrink candidates); defaults
            to the bundle's.
        metrics: Optional metrics registry threaded into the campaign.

    Returns:
        A :class:`ReplayRun`. Replay never raises for in-simulation
        failures: a target exception surfaces as ``status == "error"``
        with the exception on ``run.error``.
    """
    cfg = bundle.config
    run = ReplayRun()
    target = make_target(bundle.target)
    provider = make_state_provider(target, cfg.get("use_checkpoints"),
                                   eadr=cfg.get("eadr", False))
    state = provider.provide()
    callsites = CallSiteTable()
    entry = _reconstruct_entry(bundle, callsites)
    skips = {callsites.intern_name(site): count
             for site, count in bundle.skips.items()}
    fallback = SeededRandomPolicy(
        policy_seed(bundle.base_seed, bundle.campaign_index))
    policy = RecordingPolicy(ReplayPolicy(
        schedule if schedule is not None else bundle.schedule,
        fallback=fallback))
    priv_rng = ReplayRandom(bundle.priv_draws,
                            fallback_seed=bundle.base_seed + 1)
    evict_rng = ReplayRandom(bundle.evict_draws,
                             fallback_seed=bundle.base_seed + 2)
    priv_rng.begin_segment()
    evict_rng.begin_segment()
    campaign = run_campaign(
        target, state,
        copy.deepcopy(ops if ops is not None else bundle.ops),
        policy, entry=entry, rng=priv_rng, initial_skips=skips,
        writer_waiting=cfg.get("writer_waiting", 150),
        taint_enabled=cfg.get("taint_enabled", True),
        snapshot_images=cfg.get("snapshot_images", True),
        capture_stacks=cfg.get("capture_stacks", True),
        max_steps=cfg.get("max_steps", 30_000),
        spin_hang_limit=cfg.get("spin_hang_limit", 400),
        metrics=metrics, callsites=callsites,
        evict_fraction=cfg.get("evict_fraction", 0.0),
        evict_rng=evict_rng, scheduler_factory=ReplayScheduler)
    run.campaign = campaign
    run.status = campaign.outcome.status
    run.error = campaign.outcome.error
    run.divergence = policy.divergence
    run.decisions = list(policy.decisions)
    run.priv_draws = priv_rng.end_segment()
    run.evict_draws = evict_rng.end_segment()
    run.callsites = callsites
    checker = campaign.checker
    for record in list(checker.inconsistencies) \
            + list(checker.sync_inconsistencies):
        key = record.dedup_key()
        run.keys.append(key)
        run.records.setdefault(key, record)
    if checker.inconsistencies:
        run.first_key = checker.inconsistencies[0].dedup_key()
    elif checker.sync_inconsistencies:
        run.first_key = checker.sync_inconsistencies[0].dedup_key()
    return run


class ReplayOutcome:
    """The ``repro replay`` verdict for one bundle."""

    def __init__(self, bundle, run):
        self.bundle = bundle
        self.run = run
        self.record = run.records.get(bundle.dedup_key)
        #: The bundled record re-appeared under replay.
        self.reproduced = self.record is not None
        #: The campaign's first inconsistency is the recorded one.
        self.first_match = run.first_key == bundle.first_key
        self.divergence = run.divergence
        #: Verdict of the re-detected record after validation, or None.
        self.verdict = None

    @property
    def ok(self):
        return self.reproduced and self.first_match \
            and self.divergence is None

    def describe(self):
        """Human-readable replay report lines."""
        lines = []
        lines.append("bundle    : %s %s" % (self.bundle.target,
                                            self.bundle.kind))
        lines.append("dedup key : %s" % (self.bundle.dedup_key,))
        lines.append("schedule  : %d decisions, %d ops"
                     % (len(self.bundle.schedule), self.bundle.op_count))
        lines.append("status    : %s" % self.run.status)
        lines.append("reproduced: %s" % ("yes" if self.reproduced
                                         else "NO"))
        lines.append("first-inconsistency match: %s"
                     % ("yes" if self.first_match else "NO (expected %s, "
                        "got %s)" % (self.bundle.first_key,
                                     self.run.first_key)))
        if self.divergence is not None:
            div = self.divergence
            lines.append(
                "DIVERGENCE at decision %d (scheduler step %d): "
                "expected tid %s, runnable %s (%s)"
                % (div["index"], div["step"], div["expected_tid"],
                   div["runnable_tids"], div["reason"]))
        else:
            lines.append("divergence: none (%d decisions driven, "
                         "%d recorded)" % (len(self.run.decisions),
                                           len(self.bundle.schedule)))
        if self.verdict is not None:
            lines.append("verdict   : %s" % self.verdict.value)
        if self.run.error is not None:
            lines.append("error     : %r" % self.run.error)
        return lines


def replay_bundle(bundle, validation=None, tracer=None, metrics=None):
    """Replay ``bundle`` and assert its identity; the ``repro replay``
    entry point.

    Args:
        bundle: A :class:`ReproBundle` (or a path — strings are loaded).
        validation: Optional :class:`~repro.detect.validation_service.
            ValidationQueue`; when given and the record reproduces, it
            is validated and the outcome carries the verdict.
        tracer: Optional tracer (``replay_start`` / ``replay_end`` /
            ``replay_divergence`` events).
        metrics: Optional metrics registry (``replay.runs``,
            ``replay.reproduced``, ``replay.divergence`` counters).

    Returns:
        A :class:`ReplayOutcome`.
    """
    if isinstance(bundle, str):
        bundle = ReproBundle.load(bundle)
    tracer = tracer if tracer is not None else NULL_TRACER
    if tracer.enabled:
        tracer.emit("replay_start", target=bundle.target,
                    kind=bundle.kind, dedup_key=list(bundle.dedup_key),
                    schedule_len=len(bundle.schedule),
                    op_count=bundle.op_count)
    run = replay_campaign(bundle, metrics=metrics)
    outcome = ReplayOutcome(bundle, run)
    if validation is not None and outcome.record is not None:
        validation.enqueue(outcome.record)
        validation.drain()
        outcome.verdict = outcome.record.verdict
    if metrics is not None:
        metrics.counter("replay.runs").inc()
        if outcome.reproduced:
            metrics.counter("replay.reproduced").inc()
        if outcome.divergence is not None:
            metrics.counter("replay.divergence").inc()
    if outcome.divergence is not None and tracer.enabled:
        tracer.emit("replay_divergence", target=bundle.target,
                    **outcome.divergence)
    if tracer.enabled:
        tracer.emit("replay_end", target=bundle.target,
                    reproduced=outcome.reproduced,
                    first_match=outcome.first_match,
                    diverged=outcome.divergence is not None,
                    status=run.status,
                    verdict=outcome.verdict.value
                    if outcome.verdict is not None else None)
    return outcome

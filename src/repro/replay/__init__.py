"""Deterministic reproducer bundles: capture, replay, minimize.

One detected inconsistency becomes one **repro bundle** — a
self-contained JSON document holding everything needed to re-execute
the exact campaign that found it: the input op-sequence, the schedule
decision vector, the journaled RNG draws, the sync-point configuration
and the record's identity (dedup key + the campaign's first
inconsistency). See :mod:`repro.replay.bundle` for the format,
:mod:`repro.replay.recorder` for capture, :mod:`repro.replay.replayer`
for replay and :mod:`repro.replay.minimize` for ddmin shrinking.

CLI surface: ``repro replay <bundle>`` and ``repro shrink <bundle>``;
capture is switched on with ``--repro-dir`` on ``fuzz`` /
``fuzz-parallel``.
"""

import json
import os
import zlib

from .bundle import (
    BUNDLE_VERSION,
    BundleError,
    CONFIG_FIELDS,
    ReproBundle,
    config_snapshot,
    validate_bundle_data,
)
from .minimize import DEFAULT_BUDGET, ShrinkResult, shrink_bundle
from .recorder import CampaignCapture, RecordingRandom, ReplayRandom
from .replayer import ReplayOutcome, ReplayRun, replay_bundle, replay_campaign
from .scheduler import ReplayScheduler

__all__ = [
    "BUNDLE_VERSION",
    "BundleError",
    "CONFIG_FIELDS",
    "CampaignCapture",
    "DEFAULT_BUDGET",
    "RecordingRandom",
    "ReplayOutcome",
    "ReplayRandom",
    "ReplayRun",
    "ReplayScheduler",
    "ReproBundle",
    "ShrinkResult",
    "bundle_filename",
    "config_snapshot",
    "replay_bundle",
    "replay_campaign",
    "save_bundles",
    "shrink_bundle",
    "validate_bundle_data",
]


def bundle_filename(bundle):
    """Deterministic file name for a bundle: target, kind, key digest."""
    digest = zlib.crc32(json.dumps(list(bundle.dedup_key),
                                   sort_keys=True).encode()) & 0xFFFFFFFF
    return "%s-%s-%08x.json" % (bundle.target, bundle.kind, digest)


def save_bundles(result, directory):
    """Write every record-attached bundle in ``result`` to ``directory``.

    Verdicts are refreshed from the owning record first (bundles are
    captured at detection time, before deferred validation runs), so
    the files carry the final verdict. Returns the written paths.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for record in list(result.inconsistencies) \
            + list(result.sync_inconsistencies):
        bundle = getattr(record, "bundle", None)
        if bundle is None:
            continue
        if bundle.verdict != record.verdict.value:
            bundle = bundle.with_updates(verdict=record.verdict.value)
            record.bundle = bundle
        path = os.path.join(directory, bundle_filename(bundle))
        bundle.save(path)
        paths.append(path)
    return paths

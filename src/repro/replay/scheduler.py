"""The replay scheduler: a Scheduler driven by a recorded schedule.

:class:`ReplayScheduler` is a plain :class:`~repro.runtime.scheduler.
Scheduler` whose policy is expected to be a
:class:`~repro.runtime.policies.ReplayPolicy` (optionally wrapped in a
:class:`~repro.runtime.policies.RecordingPolicy` for re-capture). It is
injected into :func:`~repro.core.campaign.run_campaign` through the
``scheduler_factory`` hook and adds the divergence bookkeeping the
replayer reports:

* :attr:`divergence` — the first decision-vector mismatch (index,
  expected tid, runnable tids, step), or None for a faithful replay;
* :attr:`decisions_replayed` — how far into the vector the run got,
  which with the vector length distinguishes "run ended early" from
  "run needed more decisions than were recorded".
"""

from ..runtime.scheduler import Scheduler


class ReplayScheduler(Scheduler):
    """Scheduler whose successor choices come from a recorded vector."""

    @property
    def _replay_policy(self):
        # The policy may be a RecordingPolicy wrapping the ReplayPolicy.
        policy = self.policy
        inner = getattr(policy, "inner", None)
        return inner if inner is not None else policy

    @property
    def divergence(self):
        """First decision mismatch diagnostic, or None."""
        return getattr(self._replay_policy, "divergence", None)

    @property
    def decisions_replayed(self):
        """Number of recorded decisions consumed so far."""
        return getattr(self._replay_policy, "index", 0)

    @property
    def decisions_recorded(self):
        """Length of the decision vector being replayed."""
        return len(getattr(self._replay_policy, "decisions", ()))

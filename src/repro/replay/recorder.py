"""Capture side of the reproducer subsystem.

Three pieces turn one fuzzing campaign into a replayable bundle:

* :class:`RecordingRandom` — a seeded ``random.Random`` that journals
  its primitive draws (``random()`` floats and ``getrandbits`` words)
  per campaign segment. The engine's privileged-election and
  cache-eviction RNGs are *shared streams* advanced across campaigns,
  so replaying campaign N standalone needs the draws it consumed, not
  the seed.
* :class:`ReplayRandom` — serves a journaled draw sequence back through
  the same two primitives (every derived method — ``choice``,
  ``randint``, ``shuffle`` — routes through them), falling back to a
  fresh seeded stream once the journal is exhausted or the call pattern
  diverges. It journals what it actually served, so a shrink candidate
  that reproduces can be re-captured exactly.
* :class:`CampaignCapture` — assembles the per-campaign bundle: config
  snapshot, op lists, sync-point entry and skips (resolved to
  ``module:function:line`` strings), the schedule decision vector from
  :class:`~repro.runtime.policies.RecordingPolicy`, and both RNG
  journals.

Draw journal encoding (JSON-safe): a ``random()`` draw is stored as its
float, a ``getrandbits(k)`` draw as the pair ``[k, value]``.
"""

import json
import random

from .bundle import BUNDLE_VERSION, ReproBundle, config_snapshot


class RecordingRandom(random.Random):
    """Seeded RNG journaling primitive draws per segment.

    ``begin_segment()`` starts a fresh journal (one per campaign);
    ``end_segment()`` returns it. Outside a segment the journal is off
    and the RNG behaves exactly like ``random.Random(seed)``.
    """

    def __init__(self, seed=None):
        super().__init__(seed)
        self._journal = None

    def begin_segment(self):
        self._journal = []

    def end_segment(self):
        journal, self._journal = self._journal, None
        return journal if journal is not None else []

    def random(self):
        value = super().random()
        if self._journal is not None:
            self._journal.append(value)
        return value

    def getrandbits(self, k):
        value = super().getrandbits(k)
        if self._journal is not None:
            self._journal.append([k, value])
        return value


class ReplayRandom(random.Random):
    """Serve a journaled draw sequence; seeded fallback past its end.

    The journal is consumed strictly in order. A type mismatch (the
    execution asks for ``random()`` where ``getrandbits`` was recorded,
    or a different bit width) means the run diverged from the
    recording; the journal is abandoned from that point and the
    fallback stream takes over — replay divergence is diagnosed by the
    schedule layer, never raised from inside an RNG.

    Like :class:`RecordingRandom`, served draws are journaled between
    ``begin_segment``/``end_segment`` so successful shrink candidates
    can be re-captured.
    """

    def __init__(self, draws, fallback_seed=0):
        super().__init__(fallback_seed)
        self._draws = list(draws)
        self._index = 0
        self._dead = False
        self._journal = None

    @property
    def exhausted(self):
        """True once the journal no longer feeds draws."""
        return self._dead or self._index >= len(self._draws)

    def begin_segment(self):
        self._journal = []

    def end_segment(self):
        journal, self._journal = self._journal, None
        return journal if journal is not None else []

    def _next_recorded(self):
        if self._dead or self._index >= len(self._draws):
            return None
        entry = self._draws[self._index]
        self._index += 1
        return entry

    def random(self):
        entry = self._next_recorded()
        if isinstance(entry, float):
            value = entry
        else:
            if entry is not None:
                self._dead = True
            value = super().random()
        if self._journal is not None:
            self._journal.append(value)
        return value

    def getrandbits(self, k):
        entry = self._next_recorded()
        if isinstance(entry, (list, tuple)) and len(entry) == 2 \
                and entry[0] == k:
            value = entry[1]
        else:
            if entry is not None:
                self._dead = True
            value = super().getrandbits(k)
        if self._journal is not None:
            self._journal.append([k, value])
        return value


def _resolve_sites(site_ids, callsites):
    """Interned ids → sorted ``module:function:line`` strings."""
    return sorted(str(callsites.name(site_id)) for site_id in site_ids)


class CampaignCapture:
    """Accumulates one campaign's reproducer inputs, then mints bundles.

    Created by the engine right before ``run_campaign`` (so it snapshots
    the *initial* skip state the campaign actually received), finished
    right after with the recorded schedule and RNG journals, and asked
    for one bundle per newly kept record via :meth:`bundle_for`.
    """

    def __init__(self, target_name, config, base_seed, campaign_index,
                 seed_threads, entry, initial_skips):
        self.target_name = target_name
        self.config = config_snapshot(config)
        self.base_seed = base_seed
        self.campaign_index = campaign_index
        # Deep-copy via JSON: ops must not alias live mutator state.
        self.ops = json.loads(json.dumps([list(ops) for ops
                                          in seed_threads]))
        self.entry = entry
        self.initial_skips = dict(initial_skips or {})
        self._base = None

    def finish(self, decisions, priv_draws, evict_draws, callsites,
               first_key=None):
        """Freeze the campaign's recording into the shared bundle base."""
        entry_data = None
        if self.entry is not None:
            entry_data = {
                "addr": self.entry.addr,
                "loads": _resolve_sites(self.entry.load_instrs, callsites),
                "stores": _resolve_sites(self.entry.store_instrs, callsites),
                "frequency": self.entry.frequency,
            }
        self._base = {
            "version": BUNDLE_VERSION,
            "target": self.target_name,
            "config": self.config,
            "base_seed": self.base_seed,
            "campaign_index": self.campaign_index,
            "ops": self.ops,
            "entry": entry_data,
            "skips": {str(callsites.name(site)): count
                      for site, count in self.initial_skips.items()},
            "schedule": list(decisions),
            "priv_draws": list(priv_draws),
            "evict_draws": list(evict_draws),
            "callsites": callsites.snapshot(),
            "first_key": list(first_key) if first_key is not None else None,
        }
        return self

    @property
    def finished(self):
        return self._base is not None

    def bundle_for(self, record):
        """A bundle reproducing ``record`` (after :meth:`finish`)."""
        if self._base is None:
            raise RuntimeError("CampaignCapture.finish() was never called")
        data = dict(self._base)
        data["kind"] = record.kind
        data["dedup_key"] = list(record.dedup_key())
        data["verdict"] = record.verdict.value
        return ReproBundle(data)

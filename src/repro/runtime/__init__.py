"""Deterministic cooperative concurrency substrate."""

from .scheduler import Hang, RunOutcome, Scheduler
from .thread import SimThread, ThreadKilled, ThreadState
from .policies import (
    DelayInjectionPolicy,
    RecordingPolicy,
    ReplayPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    SeededRandomPolicy,
)
from .sync import SimLock, SimRWLock

__all__ = [
    "Scheduler",
    "RunOutcome",
    "Hang",
    "SimThread",
    "ThreadState",
    "ThreadKilled",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "SeededRandomPolicy",
    "DelayInjectionPolicy",
    "RecordingPolicy",
    "ReplayPolicy",
    "SimLock",
    "SimRWLock",
]

"""Deterministic cooperative scheduler for simulated threads.

Exactly one simulated thread runs at a time; every instrumented operation
calls :meth:`Scheduler.yield_point`, where the scheduler hands control to
the next thread chosen by the active :mod:`policy <repro.runtime.policies>`.
Given the same policy seed and a deterministic program, the interleaving is
fully reproducible — the property the fuzzer's execution tier relies on.

Blocking primitives (locks, the sync-point ``cond_wait``) are spin loops
over ``yield_point(kind="spin")``, so the scheduler can detect hangs the
way §4.2.2's pitfalls describe: "some threads block" and "all threads
block" conditions are spin-streak thresholds.

Hand-off is one binary lock per simulated thread used as a one-permit
semaphore: the yielding thread releases the successor's lock (granting the
single "go" permit) and parks by acquiring its own. Exactly one permit
exists at any time — the token of the running thread — so a raw lock
suffices and each hand-off costs one futex wake plus one futex wait,
without the Condition machinery of ``threading.Event``. Because at most
one thread is runnable, state mutations are serialized by construction; a
small lock protects the pieces the driver thread reads concurrently.
"""

import threading

from .thread import SimThread, ThreadKilled, ThreadState


class Hang(Exception):
    """All live threads spun past the hang threshold, or budget exhausted."""

    def __init__(self, message, blocked=()):
        super().__init__(message)
        self.blocked = list(blocked)


class RunOutcome:
    """Result of one scheduled run.

    Attributes:
        status: "ok", "hang", "budget", or "error".
        steps: Total yield points executed.
        error: The first exception raised by a simulated thread, if any.
        blocked: ``(thread name, reason)`` pairs at hang time.
    """

    def __init__(self, status, steps, error=None, blocked=()):
        self.status = status
        self.steps = steps
        self.error = error
        self.blocked = list(blocked)

    @property
    def ok(self):
        return self.status == "ok"

    def __repr__(self):
        return "<RunOutcome %s steps=%d>" % (self.status, self.steps)


class Scheduler:
    """Serializes simulated threads and enforces hang/budget limits.

    Args:
        policy: Scheduling policy (see :mod:`repro.runtime.policies`).
        max_steps: Total yield-point budget before declaring "budget".
        spin_hang_limit: Consecutive spin yields per thread after which,
            if *every* live thread is spinning, the run is declared hung.
        thread_spin_limit: Consecutive spin yields after which a single
            thread is considered permanently blocked (e.g. on a leaked
            lock) even while others progress; defaults to 4x the hang
            limit.
        metrics: Optional :class:`~repro.obs.metrics.Metrics`; step
            totals are flushed once per run (not per yield) so the step
            loop itself stays observability-free.
    """

    def __init__(self, policy, max_steps=30_000, spin_hang_limit=400,
                 thread_spin_limit=None, metrics=None):
        self.policy = policy
        self.max_steps = max_steps
        self.spin_hang_limit = spin_hang_limit
        self.thread_spin_limit = thread_spin_limit or spin_hang_limit * 4
        self.metrics = metrics
        self.threads = []
        #: Live (not DONE) threads, maintained incrementally so the
        #: per-yield hot path never rebuilds the list by filtering.
        self._live_threads = []
        self.steps = 0
        self.spin_steps = 0
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._aborting = False
        self._outcome_status = "ok"
        self._blocked_report = []
        self._local = threading.local()
        self._started = False

    # ------------------------------------------------------------------
    # setup

    def spawn(self, fn, name=None):
        """Register a simulated thread running ``fn()``; returns it."""
        if self._started:
            raise RuntimeError("cannot spawn after run() started")
        thread = SimThread(self, len(self.threads), fn, name)
        thread._go = threading.Lock()
        thread._go.acquire()  # starts with no permit: parked until granted
        self.threads.append(thread)
        self._live_threads.append(thread)
        return thread

    def current(self):
        """The :class:`SimThread` executing on this OS thread, or None."""
        return getattr(self._local, "sim_thread", None)

    # ------------------------------------------------------------------
    # run loop (driver side)

    def run(self):
        """Start all threads, serialize them to completion; returns outcome."""
        if not self.threads:
            return RunOutcome("ok", 0)
        self._started = True
        for thread in self.threads:
            thread.start()
        first = self._pick(None)
        if first is not None:
            first._go.release()
        self._done.wait()
        for thread in self.threads:
            thread.join(timeout=5.0)
        error = next((t.error for t in self.threads if t.error is not None),
                     None)
        if error is not None and self._outcome_status == "ok":
            self._outcome_status = "error"
        if self.metrics is not None:
            self.metrics.counter("scheduler.runs").inc()
            self.metrics.counter("scheduler.steps").inc(self.steps)
            self.metrics.counter("scheduler.spin_steps").inc(self.spin_steps)
            self.metrics.counter(
                "scheduler.outcome.%s" % self._outcome_status).inc()
            self.metrics.histogram("scheduler.steps_per_run").observe(
                self.steps)
        return RunOutcome(self._outcome_status, self.steps, error,
                          self._blocked_report)

    # ------------------------------------------------------------------
    # thread side

    def _enter_thread(self, thread):
        self._local.sim_thread = thread
        thread._go.acquire()
        if self._aborting:
            raise ThreadKilled()

    def _exit_thread(self, thread):
        with self._lock:
            thread.state = ThreadState.DONE
            self._live_threads.remove(thread)
            if not self._live_threads:
                self._done.set()
                return
            if self._aborting:
                # _abort_locked already granted every thread its wake-up
                # permit; granting again would double-release a raw lock.
                return
            nxt = self._pick_locked(thread)
        if nxt is not None:
            nxt._go.release()

    def yield_point(self, kind="op", reason=None):
        """Surrender the processor; returns when rescheduled.

        Args:
            kind: "op" for ordinary instrumented operations, "spin" for
                busy-wait iterations inside blocking primitives.
            reason: Human-readable blocked reason (spin yields only).
        """
        thread = self.current()
        if thread is None:
            return  # driver code outside the simulation
        if self._aborting:
            raise ThreadKilled()
        with self._lock:
            self.steps += 1
            thread.steps += 1
            if kind == "spin":
                # Hang conditions can only *become* true at a spin yield
                # (op yields reset the yielding thread's streak, and both
                # threshold crossings happen on the crossing thread's own
                # spin yield), so op yields check only the step budget.
                thread.spin_streak += 1
                self.spin_steps += 1
                thread.blocked_reason = reason
                self._check_limits_locked()
            else:
                thread.spin_streak = 0
                thread.blocked_reason = None
                if self.steps >= self.max_steps:
                    self._abort_locked("budget")
            if self._aborting:
                raise ThreadKilled()
            self.policy.on_yield(self, thread, kind)
            nxt = self._pick_locked(thread)
        if nxt is thread or nxt is None:
            return
        nxt._go.release()
        thread._go.acquire()
        if self._aborting:
            raise ThreadKilled()

    # ------------------------------------------------------------------
    # internals

    def _live(self):
        return self._live_threads

    def _check_limits_locked(self):
        if self.steps >= self.max_steps:
            self._abort_locked("budget")
            return
        live = self._live_threads
        if not live:
            return
        if all(t.spin_streak >= self.spin_hang_limit for t in live) or \
                any(t.spin_streak >= self.thread_spin_limit for t in live):
            self._blocked_report = [
                (t.name, t.blocked_reason) for t in live
                if t.spin_streak >= self.spin_hang_limit]
            self._abort_locked("hang")

    def _abort_locked(self, status):
        self._outcome_status = status
        self._aborting = True
        for thread in self.threads:
            try:
                thread._go.release()
            except RuntimeError:
                pass  # already holds a pending permit
        self._done.set()

    def _pick(self, prev):
        with self._lock:
            return self._pick_locked(prev)

    def _pick_locked(self, prev):
        live = self._live_threads
        if not live:
            return None
        for t in live:
            if t.sleep_steps:
                break
        else:
            # No sleepers (the common case outside delay injection): the
            # filtered candidate list would equal ``live``, so hand the
            # live list straight to the policy. Policies never mutate or
            # retain it, and contents/order match the filtered copy, so
            # rng.choice draws stay identical.
            return self.policy.pick(self, live, prev)
        candidates = [t for t in live if t.sleep_steps == 0]
        if not candidates:
            for t in live:
                t.sleep_steps = max(0, t.sleep_steps - 1)
            candidates = [t for t in live if t.sleep_steps == 0] or live
        chosen = self.policy.pick(self, candidates, prev)
        for t in live:
            if t is not chosen and t.sleep_steps:
                t.sleep_steps -= 1
        return chosen

    # ------------------------------------------------------------------
    # hang-awareness queries used by the sync-point controller

    def some_thread_blocked(self, threshold):
        """True if any live thread spun at least ``threshold`` times."""
        return any(t.spin_streak >= threshold for t in self._live())

    def all_threads_blocked(self, threshold):
        """True if every live thread spun at least ``threshold`` times."""
        live = self._live()
        return bool(live) and all(t.spin_streak >= threshold for t in live)

"""Synchronization primitives for simulated threads.

:class:`SimLock` is a DRAM mutex: it coordinates threads but leaves no
trace in PM, so it can never produce a PM Synchronization Inconsistency.
Persistent locks, by contrast, are plain PM words manipulated through the
instrumented CAS in :class:`repro.instrument.hooks.PmView`; the targets use
those where the original systems persisted their locks (P-CLHT bucket
locks, CCEH segment locks).
"""

from .thread import ThreadKilled  # noqa: F401  (re-exported convenience)


class SimLock:
    """A DRAM spin lock driven by scheduler yield points.

    Because the scheduler serializes threads, test-and-set needs no real
    atomicity — the loop simply yields while the lock is held, which also
    feeds hang detection when an unlock is missing (P-CLHT bug 5).
    """

    #: Sentinel holder for lock acquisition outside the scheduler
    #: (single-threaded setup/recovery code).
    _DRIVER = object()

    def __init__(self, scheduler, name="lock"):
        self.scheduler = scheduler
        self.name = name
        self.holder = None

    def _me(self):
        if self.scheduler is None:
            return self._DRIVER
        return self.scheduler.current() or self._DRIVER

    def _yield(self, kind, reason=None):
        if self.scheduler is not None:
            self.scheduler.yield_point(kind, reason)

    def acquire(self):
        me = self._me()
        while self.holder is not None and self.holder is not me:
            if self.scheduler is None:
                raise RuntimeError(
                    "lock %s contended outside the scheduler" % self.name)
            self._yield("spin", "lock:%s" % self.name)
        self.holder = me
        self._yield("op")

    def release(self):
        if self.holder is None:
            raise RuntimeError("release of unheld lock %s" % self.name)
        self.holder = None
        self._yield("op")

    def locked(self):
        return self.holder is not None

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.release()
        return False


class SimRWLock:
    """A DRAM reader-writer lock (write-preferring, spin-based)."""

    def __init__(self, scheduler, name="rwlock"):
        self.scheduler = scheduler
        self.name = name
        self.readers = 0
        self.writer = None

    def acquire_read(self):
        while self.writer is not None:
            self.scheduler.yield_point("spin", "rdlock:%s" % self.name)
        self.readers += 1
        self.scheduler.yield_point("op")

    def release_read(self):
        if self.readers <= 0:
            raise RuntimeError("release_read without readers on %s" % self.name)
        self.readers -= 1
        self.scheduler.yield_point("op")

    def acquire_write(self):
        me = self.scheduler.current()
        while self.writer is not None or self.readers > 0:
            self.scheduler.yield_point("spin", "wrlock:%s" % self.name)
        self.writer = me
        self.scheduler.yield_point("op")

    def release_write(self):
        if self.writer is None:
            raise RuntimeError("release_write of unheld %s" % self.name)
        self.writer = None
        self.scheduler.yield_point("op")

"""Scheduling policies: how the next simulated thread is chosen.

Policies are the exploration substrate that §4.2.2 builds on. The
sync-point controller (``repro.core.syncpoints``) layers Figure 6's
``cond_wait``/``cond_signal`` on top of whichever policy is active, so the
policies here stay simple:

* :class:`RoundRobinPolicy` — fair deterministic rotation.
* :class:`SeededRandomPolicy` — uniform random successor from a seed; the
  default for fuzz campaigns (the "multiple runs with random scheduler"
  baseline in §7 falls out of reseeding it).
* :class:`DelayInjectionPolicy` — the paper's comparison scheme: before
  each PM access a random delay (bounded) is injected by putting the
  current thread to sleep for a few scheduling rounds.

Two meta-policies support deterministic reproducer bundles
(:mod:`repro.replay`): :class:`RecordingPolicy` journals every successor
decision an inner policy makes, and :class:`ReplayPolicy` re-drives a
recorded decision vector, falling back to a seeded policy — and noting
the first divergence — when the trace and the execution disagree.
"""

import random


class SchedulingPolicy:
    """Interface: ``pick`` a successor and observe ``on_yield`` events."""

    def pick(self, scheduler, candidates, prev):
        raise NotImplementedError

    def on_yield(self, scheduler, thread, kind):
        """Called at every yield point before successor selection."""

    def reset(self):
        """Reset per-run state (called between campaigns)."""


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through runnable threads in tid order."""

    def pick(self, scheduler, candidates, prev):
        if prev is None or prev not in scheduler.threads:
            return candidates[0]
        order = sorted(candidates, key=lambda t: t.tid)
        for thread in order:
            if thread.tid > prev.tid:
                return thread
        return order[0]


class SeededRandomPolicy(SchedulingPolicy):
    """Pick a uniformly random runnable thread from a seeded RNG."""

    def __init__(self, seed=0):
        self.seed = seed
        self.rng = random.Random(seed)

    def reset(self):
        self.rng = random.Random(self.seed)

    def reseed(self, seed):
        self.seed = seed
        self.rng = random.Random(seed)

    def pick(self, scheduler, candidates, prev):
        return self.rng.choice(candidates)


class DelayInjectionPolicy(SeededRandomPolicy):
    """Random delays before PM accesses (§6.1's "Delay Inj" baseline).

    Before each PM-access yield, with probability ``delay_prob`` the
    current thread sleeps for ``1..max_delay_steps`` scheduling rounds,
    emulating "a random delay (1 millisecond at most) following a uniform
    distribution".
    """

    def __init__(self, seed=0, delay_prob=0.25, max_delay_steps=12):
        super().__init__(seed)
        self.delay_prob = delay_prob
        self.max_delay_steps = max_delay_steps

    def on_yield(self, scheduler, thread, kind):
        if kind == "op" and self.rng.random() < self.delay_prob:
            thread.sleep_steps += self.rng.randint(1, self.max_delay_steps)


class RecordingPolicy(SchedulingPolicy):
    """Wrap a policy and journal every successor decision (as tids).

    The wrapper is transparent: ``pick``/``on_yield`` delegate to the
    inner policy, so the driven interleaving is identical with or
    without recording. ``decisions`` afterwards holds one tid per
    ``pick`` call, in order — the schedule decision vector a
    :class:`ReplayPolicy` can re-drive.
    """

    def __init__(self, inner):
        self.inner = inner
        self.decisions = []

    @property
    def divergence(self):
        """Pass-through when wrapping a :class:`ReplayPolicy`."""
        return getattr(self.inner, "divergence", None)

    def pick(self, scheduler, candidates, prev):
        chosen = self.inner.pick(scheduler, candidates, prev)
        self.decisions.append(chosen.tid)
        return chosen

    def on_yield(self, scheduler, thread, kind):
        self.inner.on_yield(scheduler, thread, kind)

    def reset(self):
        self.decisions = []
        self.inner.reset()


class ReplayPolicy(SchedulingPolicy):
    """Re-drive a recorded schedule decision vector.

    Each ``pick`` consumes the next recorded tid. When the recorded
    thread is not runnable (it already finished — the execution
    diverged from the recording) or the trace is exhausted before the
    run ends, the policy falls back to ``fallback`` (or the lowest-tid
    candidate) for that pick and keeps going: divergence must never
    crash the scheduler, it is *diagnosed*. Only the first divergence
    is kept, as a dict with the decision index, the expected tid, the
    tids that were actually runnable, and the scheduler step count —
    the diagnostics ``repro replay`` prints.
    """

    def __init__(self, decisions, fallback=None):
        self.decisions = list(decisions)
        self.fallback = fallback
        self.index = 0
        self.divergence = None

    def reset(self):
        self.index = 0
        self.divergence = None
        if self.fallback is not None:
            self.fallback.reset()

    def _diverge(self, scheduler, candidates, index, expected, reason):
        if self.divergence is None:
            self.divergence = {
                "index": index,
                "expected_tid": expected,
                "runnable_tids": sorted(t.tid for t in candidates),
                "step": scheduler.steps,
                "reason": reason,
            }

    def _fallback_pick(self, scheduler, candidates, prev):
        if self.fallback is not None:
            return self.fallback.pick(scheduler, candidates, prev)
        return min(candidates, key=lambda t: t.tid)

    def pick(self, scheduler, candidates, prev):
        index = self.index
        if index >= len(self.decisions):
            self._diverge(scheduler, candidates, index, None,
                          "trace-exhausted")
            return self._fallback_pick(scheduler, candidates, prev)
        tid = self.decisions[index]
        self.index = index + 1
        for thread in candidates:
            if thread.tid == tid:
                return thread
        self._diverge(scheduler, candidates, index, tid,
                      "thread-not-runnable")
        return self._fallback_pick(scheduler, candidates, prev)

"""Scheduling policies: how the next simulated thread is chosen.

Policies are the exploration substrate that §4.2.2 builds on. The
sync-point controller (``repro.core.syncpoints``) layers Figure 6's
``cond_wait``/``cond_signal`` on top of whichever policy is active, so the
policies here stay simple:

* :class:`RoundRobinPolicy` — fair deterministic rotation.
* :class:`SeededRandomPolicy` — uniform random successor from a seed; the
  default for fuzz campaigns (the "multiple runs with random scheduler"
  baseline in §7 falls out of reseeding it).
* :class:`DelayInjectionPolicy` — the paper's comparison scheme: before
  each PM access a random delay (bounded) is injected by putting the
  current thread to sleep for a few scheduling rounds.
"""

import random


class SchedulingPolicy:
    """Interface: ``pick`` a successor and observe ``on_yield`` events."""

    def pick(self, scheduler, candidates, prev):
        raise NotImplementedError

    def on_yield(self, scheduler, thread, kind):
        """Called at every yield point before successor selection."""

    def reset(self):
        """Reset per-run state (called between campaigns)."""


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through runnable threads in tid order."""

    def pick(self, scheduler, candidates, prev):
        if prev is None or prev not in scheduler.threads:
            return candidates[0]
        order = sorted(candidates, key=lambda t: t.tid)
        for thread in order:
            if thread.tid > prev.tid:
                return thread
        return order[0]


class SeededRandomPolicy(SchedulingPolicy):
    """Pick a uniformly random runnable thread from a seeded RNG."""

    def __init__(self, seed=0):
        self.seed = seed
        self.rng = random.Random(seed)

    def reset(self):
        self.rng = random.Random(self.seed)

    def reseed(self, seed):
        self.seed = seed
        self.rng = random.Random(seed)

    def pick(self, scheduler, candidates, prev):
        return self.rng.choice(candidates)


class DelayInjectionPolicy(SeededRandomPolicy):
    """Random delays before PM accesses (§6.1's "Delay Inj" baseline).

    Before each PM-access yield, with probability ``delay_prob`` the
    current thread sleeps for ``1..max_delay_steps`` scheduling rounds,
    emulating "a random delay (1 millisecond at most) following a uniform
    distribution".
    """

    def __init__(self, seed=0, delay_prob=0.25, max_delay_steps=12):
        super().__init__(seed)
        self.delay_prob = delay_prob
        self.max_delay_steps = max_delay_steps

    def on_yield(self, scheduler, thread, kind):
        if kind == "op" and self.rng.random() < self.delay_prob:
            thread.sleep_steps += self.rng.randint(1, self.max_delay_steps)

"""Simulated threads managed by the cooperative scheduler."""

import enum
import threading


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    DONE = "done"


class ThreadKilled(BaseException):
    """Raised inside a simulated thread when the scheduler aborts the run.

    Derives from ``BaseException`` so target code catching ``Exception``
    cannot swallow it.
    """


class SimThread:
    """One simulated thread: a real OS thread gated by the scheduler.

    Attributes:
        tid: Small integer thread id (0-based), used by checkers as the
            writer/reader identity.
        name: Human-readable name for reports.
        sleep_steps: Scheduling rounds to skip (used by delay injection).
        spin_streak: Consecutive ``spin``-kind yields; feeds hang detection.
        bypass_sync: Figure 6's privileged-thread flag.
        blocked_reason: Why the thread is currently spinning, for reports.
    """

    def __init__(self, scheduler, tid, fn, name=None):
        self.scheduler = scheduler
        self.tid = tid
        self.fn = fn
        self.name = name or ("thread-%d" % tid)
        self.state = ThreadState.NEW
        self.error = None
        self.sleep_steps = 0
        self.spin_streak = 0
        self.bypass_sync = False
        self.blocked_reason = None
        self.steps = 0
        self._os_thread = threading.Thread(
            target=self._bootstrap, name=self.name, daemon=True
        )

    def start(self):
        self.state = ThreadState.READY
        self._os_thread.start()

    def join(self, timeout=None):
        self._os_thread.join(timeout)

    def _bootstrap(self):
        sched = self.scheduler
        sched._enter_thread(self)
        try:
            self.fn()
        except ThreadKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            self.error = exc
        finally:
            sched._exit_thread(self)

    def __repr__(self):
        return "<SimThread %s state=%s>" % (self.name, self.state.value)

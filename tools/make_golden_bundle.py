#!/usr/bin/env python3
"""Regenerate the checked-in golden repro bundle.

The golden bundle (``tests/replay/golden/memcached-pmem-bug.json``) is
replayed by ``tests/replay/test_golden.py`` and by CI's replay-smoke
step; any divergence fails the build. Its call-site strings embed
target source line numbers, so an intentional change to
``src/repro/targets/memcached.py`` (or to input generation, scheduling,
or the bundle format) requires re-running this script:

    PYTHONPATH=src python tools/make_golden_bundle.py

The script fuzzes memcached with the pinned seed, takes the first
confirmed bug, ddmin-shrinks it (small file, strict replay), verifies
the result replays cleanly, and rewrites the golden file. Commit the
updated JSON together with the change that moved it.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.engine import PMRace, PMRaceConfig  # noqa: E402
from repro.detect.records import Verdict  # noqa: E402
from repro.replay import replay_bundle, shrink_bundle  # noqa: E402
from repro.targets.registry import make_target  # noqa: E402

BASE_SEED = 7
MAX_CAMPAIGNS = 30
SHRINK_BUDGET = 150
GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "tests",
                           "replay", "golden", "memcached-pmem-bug.json")


def main():
    cfg = PMRaceConfig(max_campaigns=MAX_CAMPAIGNS, base_seed=BASE_SEED,
                       capture_repro=True, profile=False)
    print("fuzzing memcached-pmem (seed %d, %d campaigns)..."
          % (BASE_SEED, MAX_CAMPAIGNS))
    result = PMRace(make_target("memcached-pmem"), cfg).run()
    bugs = [record for record in result.inconsistencies
            + result.sync_inconsistencies
            if record.verdict is Verdict.BUG and record.bundle is not None]
    if not bugs:
        print("no confirmed bug captured; golden bundle unchanged",
              file=sys.stderr)
        return 1
    bundle = bugs[0].bundle.with_updates(verdict=bugs[0].verdict.value)
    print("shrinking %s (%d ops)..." % (list(bundle.dedup_key),
                                        bundle.op_count))
    shrunk = shrink_bundle(bundle, budget=SHRINK_BUDGET)
    if not shrunk.verified:
        print("shrink output failed strict verification", file=sys.stderr)
        return 1
    outcome = replay_bundle(shrunk.bundle)
    if not outcome.ok:
        print("golden candidate does not replay cleanly:", file=sys.stderr)
        for line in outcome.describe():
            print("  " + line, file=sys.stderr)
        return 1
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    path = shrunk.bundle.save(GOLDEN_PATH)
    print("golden bundle written to %s (%d ops, %d decisions)"
          % (os.path.relpath(path), shrunk.bundle.op_count,
             len(shrunk.bundle.schedule)))
    return 0


if __name__ == "__main__":
    sys.exit(main())

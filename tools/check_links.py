#!/usr/bin/env python3
"""Check that markdown links in README and docs/ resolve.

Verifies every ``[text](target)`` link in the repo's user-facing
markdown: relative file targets must exist on disk, and ``#fragment``
anchors (bare or appended to a file target) must match a heading in
the referenced document, using GitHub's heading-slug rules. External
``http(s)``/``mailto`` links are not fetched — only noted with
``--list``.

Exit status is non-zero when any link is broken; CI's docs-and-lint
job runs this on every push.

    python tools/check_links.py             # README.md + docs/*.md
    python tools/check_links.py FILE...     # explicit file set
    python tools/check_links.py --list      # also print every link
"""

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — target may not contain whitespace or a closing paren.
LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def default_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    files += sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md")))
    return files


def github_slug(heading):
    """GitHub's anchor slug for a heading line (inline markup stripped)."""
    text = re.sub(r"[`*_]|\[|\]\([^)]*\)", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def iter_links(path):
    """(lineno, target) for every markdown link outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield lineno, match.group(1)


def heading_slugs(path):
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if CODE_FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match:
                slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(path, list_links=False):
    """List of "file:line: problem" strings for one markdown file."""
    problems = []
    for lineno, target in iter_links(path):
        where = "%s:%d" % (os.path.relpath(path, REPO_ROOT), lineno)
        if list_links:
            print("%s: %s" % (where, target))
        if target.startswith(EXTERNAL_SCHEMES):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                problems.append("%s: missing file %s" % (where, file_part))
                continue
            anchor_doc = resolved
        else:
            anchor_doc = path
        if fragment and (not os.path.isfile(anchor_doc)
                         or fragment not in heading_slugs(anchor_doc)):
            problems.append("%s: no heading for #%s in %s"
                            % (where, fragment,
                               os.path.relpath(anchor_doc, REPO_ROOT)))
    return problems


def main(argv=None):
    args = list(sys.argv[1:] if argv is None else argv)
    list_links = "--list" in args
    if list_links:
        args.remove("--list")
    files = [os.path.abspath(a) for a in args] or default_files()
    problems = []
    for path in files:
        if not os.path.isfile(path):
            problems.append("%s: file not found" % path)
            continue
        problems.extend(check_file(path, list_links=list_links))
    for problem in problems:
        print(problem, file=sys.stderr)
    print("checked %d file(s): %s" % (
        len(files), "%d broken link(s)" % len(problems) if problems
        else "all links resolve"))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

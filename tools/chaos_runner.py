#!/usr/bin/env python
"""Chaos harness: SIGKILL real fuzzing runs, resume them, assert parity.

This is the session layer's self-test: it runs a real ``repro fuzz`` /
``fuzz-parallel`` command to completion (the *golden* run), then runs the
same command again while killing it — either at deterministic session
write boundaries via the ``REPRO_FAULT_POINT`` fault injector
(``--mode fault``) or at a randomized wall-clock moment with a
process-group SIGKILL (``--mode timed``) — resumes with ``--resume``
until the run completes, and asserts the recovered result's
*fingerprint* (verdict per dedup key, hang signatures, corpus digests,
total campaigns) is identical to the golden run's.

Usage (CI's ``chaos-smoke`` job)::

    python tools/chaos_runner.py --target pmring --campaigns 8 \
        --seeds 7 13 --kills 4 --seed 0 --session-root chaos-sessions

Exit status is nonzero on any fingerprint mismatch or a run that fails
to recover; the session directories are left in ``--session-root`` for
post-mortem (CI uploads them as an artifact on failure).
"""

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.engine import PMRaceConfig  # noqa: E402
from repro.core.session import (  # noqa: E402
    FAULT_ENV,
    ImageStore,
    result_fingerprint,
    result_from_doc,
)

#: (point, countdown) pairs ``--mode fault`` draws kill sites from.
#: journal_append 1 is the session_open line; checkpoint_write N covers
#: the Nth unit (or final) checkpoint; image/corpus writes land inside a
#: checkpoint, so a kill there tears the checkpoint mid-flight.
FAULT_SITES = (
    ("journal_append", 1),
    ("journal_append", 2),
    ("checkpoint_write", 1),
    ("checkpoint_write", 2),
    ("image_write", 1),
    ("corpus_write", 1),
)


def _repro_cmd(args, session_dir, resume=False):
    cmd = [sys.executable, "-m", "repro", args.command, args.target,
           "--campaigns", str(args.campaigns),
           "--seeds"] + [str(seed) for seed in args.seeds] + \
          ["--session-dir", session_dir]
    if args.command == "fuzz-parallel":
        cmd += ["--processes", str(args.processes)]
    if resume:
        cmd.append("--resume")
    return cmd


def _env(extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(FAULT_ENV, None)
    if extra:
        env.update(extra)
    return env


def load_fingerprint(session_dir, config):
    """The comparable identity of a session's committed checkpoint."""
    path = os.path.join(session_dir, "checkpoint.json")
    with open(path) as handle:
        doc = json.load(handle)
    if not doc.get("final"):
        raise AssertionError("%s: checkpoint is not final" % path)
    images = ImageStore(os.path.join(session_dir, "images"))
    result = result_from_doc(doc, images, config)
    return result_fingerprint(result)


def run_golden(args, session_dir):
    print("== golden run -> %s" % session_dir)
    proc = subprocess.run(_repro_cmd(args, session_dir), env=_env(),
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL,
                          timeout=args.timeout)
    if proc.returncode != 0:
        raise AssertionError("golden run exited %d" % proc.returncode)
    return load_fingerprint(session_dir, PMRaceConfig())


def _kill_fault(args, session_dir, rng):
    """One kill via the fault injector; returns True if the process
    actually died to the injected SIGKILL (vs. finishing first)."""
    point, count = rng.choice(FAULT_SITES)
    spec = "%s:kill:%d" % (point, count)
    resume = os.path.exists(os.path.join(session_dir, "MANIFEST.json"))
    proc = subprocess.run(_repro_cmd(args, session_dir, resume=resume),
                          env=_env({FAULT_ENV: spec}),
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL,
                          timeout=args.timeout)
    print("   kill via %s -> exit %d" % (spec, proc.returncode))
    return proc.returncode == -signal.SIGKILL


def _kill_timed(args, session_dir, rng):
    """One kill at a random wall-clock moment: SIGKILL the whole process
    group (parent + pool workers), like an OOM killer or power cut."""
    resume = os.path.exists(os.path.join(session_dir, "MANIFEST.json"))
    proc = subprocess.Popen(_repro_cmd(args, session_dir, resume=resume),
                            env=_env(), stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL,
                            start_new_session=True)
    delay = rng.uniform(0.05, args.kill_after)
    time.sleep(delay)
    try:
        os.killpg(proc.pid, signal.SIGKILL)
        killed = True
    except ProcessLookupError:
        killed = False
    code = proc.wait()
    print("   killpg after %.2fs -> exit %d" % (delay, code))
    return killed and code != 0


def run_chaos(args, session_dir, rng):
    """Kill the run ``args.kills`` times, then let it finish; returns
    the recovered fingerprint."""
    print("== chaos run -> %s (%s mode)" % (session_dir, args.mode))
    kill = _kill_fault if args.mode == "fault" else _kill_timed
    landed = 0
    for _ in range(args.kills):
        if kill(args, session_dir, rng):
            landed += 1
    if landed == 0:
        print("   note: no kill landed mid-run (runs finished first)")
    for attempt in range(args.max_resumes):
        resume = os.path.exists(os.path.join(session_dir,
                                             "MANIFEST.json"))
        proc = subprocess.run(
            _repro_cmd(args, session_dir, resume=resume), env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            timeout=args.timeout)
        print("   resume #%d -> exit %d" % (attempt + 1, proc.returncode))
        if proc.returncode == 0:
            return load_fingerprint(session_dir, PMRaceConfig())
        if proc.returncode == 2:
            raise AssertionError("resume refused the session directory")
    raise AssertionError("no clean finish within %d resume(s)"
                         % args.max_resumes)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--target", default="pmring")
    parser.add_argument("--command", default="fuzz-parallel",
                        choices=("fuzz", "fuzz-parallel"))
    parser.add_argument("--campaigns", type=int, default=8)
    parser.add_argument("--seeds", type=int, nargs="+", default=[7, 13])
    parser.add_argument("--processes", type=int, default=1,
                        help="fuzz-parallel pool size (1 = in-process, "
                             "required for deterministic fault-point "
                             "kills)")
    parser.add_argument("--kills", type=int, default=4,
                        help="SIGKILLs to attempt before letting the run "
                             "finish (default 4)")
    parser.add_argument("--mode", choices=("fault", "timed"),
                        default="fault",
                        help="fault: deterministic kills at session "
                             "write boundaries; timed: randomized "
                             "wall-clock process-group kills")
    parser.add_argument("--kill-after", type=float, default=0.5,
                        dest="kill_after",
                        help="timed mode: max seconds before the kill")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for kill-site selection")
    parser.add_argument("--max-resumes", type=int, default=8,
                        dest="max_resumes")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-subprocess timeout in seconds")
    parser.add_argument("--session-root", default="chaos-sessions",
                        dest="session_root")
    parser.add_argument("--rounds", type=int, default=1,
                        help="independent chaos rounds against the same "
                             "golden (each with its own session dir)")
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    if os.path.exists(args.session_root):
        shutil.rmtree(args.session_root)
    os.makedirs(args.session_root)
    golden_dir = os.path.join(args.session_root, "golden")
    golden = run_golden(args, golden_dir)
    print("   golden fingerprint: %d verdict(s), %d corpus digest(s), "
          "%d campaigns" % (len(golden["verdicts"]),
                            len(golden["corpus_digests"]),
                            golden["campaigns"]))
    failures = 0
    for round_index in range(args.rounds):
        chaos_dir = os.path.join(args.session_root,
                                 "chaos-%d" % round_index)
        recovered = run_chaos(args, chaos_dir, rng)
        if recovered == golden:
            print("   round %d: fingerprints MATCH" % round_index)
        else:
            failures += 1
            print("   round %d: MISMATCH" % round_index)
            for key in golden:
                if recovered[key] != golden[key]:
                    print("     %s:\n       golden   : %r\n"
                          "       recovered: %r"
                          % (key, golden[key], recovered[key]))
    if failures:
        print("chaos: %d/%d round(s) FAILED — session dirs kept in %s"
              % (failures, args.rounds, args.session_root))
        return 1
    print("chaos: %d round(s), %d kill(s) each — kill-resume "
          "equivalence holds" % (args.rounds, args.kills))
    return 0


if __name__ == "__main__":
    sys.exit(main())
